package faults

import (
	"fmt"
	"net/http"
	"sync"
	"time"
)

// ReplicaFault enumerates the injectable replica-level failures of the
// serving tier — the process- and network-level counterpart of the chunk
// delivery faults above. The routing tier (internal/router) is tested
// against these: a Dead replica trips circuit breakers, a Slow replica
// triggers hedged retries, a Partitioned replica burns the per-try timeout.
type ReplicaFault int

const (
	// ReplicaHealthy serves requests untouched.
	ReplicaHealthy ReplicaFault = iota
	// ReplicaDead closes the connection without answering — the observable
	// behavior of a crashed or OOM-killed process behind a listener that
	// the kernel already tore down.
	ReplicaDead
	// ReplicaSlow delays every response by the configured SlowDelay — a
	// replica on an overloaded box or behind a congested link.
	ReplicaSlow
	// ReplicaPartitioned never answers: the request hangs until the client
	// gives up — a network partition or a blackholed route.
	ReplicaPartitioned
)

var replicaFaultNames = map[ReplicaFault]string{
	ReplicaHealthy: "healthy", ReplicaDead: "dead",
	ReplicaSlow: "slow", ReplicaPartitioned: "partitioned",
}

func (f ReplicaFault) String() string {
	if s, ok := replicaFaultNames[f]; ok {
		return s
	}
	return fmt.Sprintf("ReplicaFault(%d)", int(f))
}

// ReplicaPlan assigns faults to replica IDs, with the same determinism
// contract as Config: explicit Plan entries win, IDs without one draw from
// the probability fields via a hash of (Seed, id) — stable across runs and
// independent of evaluation order or goroutine interleaving.
type ReplicaPlan struct {
	// Seed drives every pseudo-random choice. Zero is a valid seed.
	Seed int64
	// Plan pins specific replica IDs to specific faults.
	Plan map[string]ReplicaFault
	// DeadProb, SlowProb and PartitionProb are per-replica probabilities in
	// [0, 1], examined in that order against one uniform draw.
	DeadProb, SlowProb, PartitionProb float64
	// SlowDelay is the per-response delay of a Slow replica. Zero means
	// 50ms.
	SlowDelay time.Duration
	// PartitionMax bounds how long a Partitioned replica hangs when the
	// client never disconnects. Zero means 30s.
	PartitionMax time.Duration
}

// ReplicaChaos injects replica faults into HTTP handlers. The initial
// assignment comes from the deterministic plan; scripted scenarios mutate
// it at runtime with Set (kill this replica now, heal it later). All
// methods are safe for concurrent use.
type ReplicaChaos struct {
	plan ReplicaPlan

	mu        sync.Mutex
	overrides map[string]ReplicaFault
	hits      map[ReplicaFault]int
}

// NewReplicaChaos returns a chaos controller over the plan.
func NewReplicaChaos(plan ReplicaPlan) *ReplicaChaos {
	if plan.SlowDelay == 0 {
		plan.SlowDelay = 50 * time.Millisecond
	}
	if plan.PartitionMax == 0 {
		plan.PartitionMax = 30 * time.Second
	}
	return &ReplicaChaos{
		plan:      plan,
		overrides: make(map[string]ReplicaFault),
		hits:      make(map[ReplicaFault]int),
	}
}

// FaultFor returns the fault currently assigned to a replica ID: a runtime
// override if one was Set, otherwise the plan's deterministic assignment.
func (c *ReplicaChaos) FaultFor(id string) ReplicaFault {
	c.mu.Lock()
	f, ok := c.overrides[id]
	c.mu.Unlock()
	if ok {
		return f
	}
	return c.plan.assigned(id)
}

// assigned is the pure plan assignment: config and ID only.
func (p ReplicaPlan) assigned(id string) ReplicaFault {
	if f, ok := p.Plan[id]; ok {
		return f
	}
	u := unitDraw(p.Seed, "replica", id)
	for _, cand := range []struct {
		prob float64
		f    ReplicaFault
	}{
		{p.DeadProb, ReplicaDead},
		{p.SlowProb, ReplicaSlow},
		{p.PartitionProb, ReplicaPartitioned},
	} {
		if u < cand.prob {
			return cand.f
		}
		u -= cand.prob
	}
	return ReplicaHealthy
}

// Set pins a replica to a fault at runtime, overriding the plan — the
// scripting hook chaos scenarios use ("now kill r2, then heal it").
func (c *ReplicaChaos) Set(id string, f ReplicaFault) {
	c.mu.Lock()
	c.overrides[id] = f
	c.mu.Unlock()
}

// Heal removes a runtime override, returning the replica to its plan
// assignment.
func (c *ReplicaChaos) Heal(id string) {
	c.mu.Lock()
	delete(c.overrides, id)
	c.mu.Unlock()
}

// Stats returns how many requests each fault class intercepted so far.
func (c *ReplicaChaos) Stats() map[ReplicaFault]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[ReplicaFault]int, len(c.hits))
	for f, n := range c.hits {
		out[f] = n
	}
	return out
}

func (c *ReplicaChaos) record(f ReplicaFault) {
	c.mu.Lock()
	c.hits[f]++
	c.mu.Unlock()
}

// Middleware wraps a replica's handler with its fault behavior. The
// returned handler consults the current assignment per request, so Set and
// Heal take effect immediately.
func (c *ReplicaChaos) Middleware(id string, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch f := c.FaultFor(id); f {
		case ReplicaDead:
			c.record(f)
			killConn(w)
			return
		case ReplicaSlow:
			c.record(f)
			select {
			case <-time.After(c.plan.SlowDelay):
			case <-r.Context().Done():
				killConn(w)
				return
			}
		case ReplicaPartitioned:
			c.record(f)
			select {
			case <-time.After(c.plan.PartitionMax):
			case <-r.Context().Done():
			}
			killConn(w)
			return
		}
		next.ServeHTTP(w, r)
	})
}

// killConn makes the failure look like a dead process: hijack the
// connection and close it mid-air so the client sees EOF, falling back to
// an empty 502 on transports that cannot hijack (HTTP/2).
func killConn(w http.ResponseWriter) {
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
			return
		}
	}
	w.WriteHeader(http.StatusBadGateway)
}
