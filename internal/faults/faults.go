// Package faults is a deterministic, seedable fault injector for the I/O
// layer of the pipeline — distinct from internal/gen's data-defect
// injector, which corrupts the *content* of an otherwise healthy dataset.
// This package corrupts the *delivery*: chunks go missing, arrive
// truncated, fail transiently EAGAIN-style, come back with flipped bytes,
// or show up late, reproducing the feed failures the paper reports around
// Table II. It wraps any ingest.Source, so the exact same conversion or
// stream-replay code runs against a healthy directory and a hostile one.
package faults

import (
	"context"
	"fmt"
	"hash/fnv"
	"io/fs"
	"math/rand"
	"sync"

	"gdeltmine/internal/ingest"
	"gdeltmine/internal/retry"
)

// Fault enumerates the injectable delivery failures.
type Fault int

const (
	// None delivers the chunk untouched.
	None Fault = iota
	// Missing makes the chunk permanently absent (fs.ErrNotExist).
	Missing
	// Truncated delivers only a prefix of the chunk.
	Truncated
	// Transient fails the first FailCount reads with a retryable
	// EAGAIN-style error, then delivers the chunk intact.
	Transient
	// Corrupted delivers the chunk with bytes flipped (checksum breaks).
	Corrupted
	// Delayed makes the chunk look not-yet-published (retryable
	// not-found) for the first FailCount reads, then delivers it — the
	// late-interval failure mode of the live 15-minute feed.
	Delayed
)

var faultNames = map[Fault]string{
	None: "none", Missing: "missing", Truncated: "truncated",
	Transient: "transient", Corrupted: "corrupted", Delayed: "delayed",
}

func (f Fault) String() string {
	if s, ok := faultNames[f]; ok {
		return s
	}
	return fmt.Sprintf("Fault(%d)", int(f))
}

// Config assigns faults to chunk paths. Explicit Plan entries win; paths
// without one draw a fault from the probability fields using a hash of
// (Seed, path), so the assignment is deterministic, order-independent and
// stable across runs.
type Config struct {
	// Seed drives every pseudo-random choice. Zero is a valid seed.
	Seed int64
	// Plan pins specific paths to specific faults.
	Plan map[string]Fault
	// MissingProb, TruncatedProb, TransientProb, CorruptedProb and
	// DelayedProb are per-path probabilities in [0, 1]; they are examined
	// in that order against one uniform draw, so their sum should stay
	// at or below 1.
	MissingProb, TruncatedProb, TransientProb, CorruptedProb, DelayedProb float64
	// FailCount is how many reads a Transient or Delayed chunk fails
	// before succeeding. Zero means 2.
	FailCount int
	// TruncateFrac is the fraction of bytes kept by Truncated. Zero
	// means 0.5.
	TruncateFrac float64
}

// Injector wraps an ingest.Source and injects the configured faults.
type Injector struct {
	cfg  Config
	src  ingest.Source
	mu   sync.Mutex
	seen map[string]int // per-path read attempts, for Transient/Delayed
	hits map[Fault]int  // injected fault tally, for test assertions
}

// New returns an injector over src with the given config.
func New(src ingest.Source, cfg Config) *Injector {
	if cfg.FailCount == 0 {
		cfg.FailCount = 2
	}
	if cfg.TruncateFrac == 0 {
		cfg.TruncateFrac = 0.5
	}
	return &Injector{cfg: cfg, src: src, seen: make(map[string]int), hits: make(map[Fault]int)}
}

// FaultFor returns the fault assigned to a path. The assignment is pure:
// it depends only on the config and the path.
func (in *Injector) FaultFor(path string) Fault {
	if f, ok := in.cfg.Plan[path]; ok {
		return f
	}
	u := in.unit(path, "assign")
	for _, c := range []struct {
		p float64
		f Fault
	}{
		{in.cfg.MissingProb, Missing},
		{in.cfg.TruncatedProb, Truncated},
		{in.cfg.TransientProb, Transient},
		{in.cfg.CorruptedProb, Corrupted},
		{in.cfg.DelayedProb, Delayed},
	} {
		if u < c.p {
			return c.f
		}
		u -= c.p
	}
	return None
}

// unit returns a deterministic uniform draw in [0, 1) for (path, label).
func (in *Injector) unit(path, label string) float64 {
	return unitDraw(in.cfg.Seed, label, path)
}

// unitDraw is the shared deterministic uniform draw for (seed, label, key):
// a pure function, so fault assignment never depends on evaluation order.
func unitDraw(seed int64, label, key string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s", seed, label, key)
	return rand.New(rand.NewSource(int64(h.Sum64()))).Float64()
}

// Stats returns how many reads each fault class intercepted so far.
// Transient and Delayed count one hit per failed read.
func (in *Injector) Stats() map[Fault]int {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Fault]int, len(in.hits))
	for f, n := range in.hits {
		out[f] = n
	}
	return out
}

func (in *Injector) record(f Fault) {
	in.mu.Lock()
	in.hits[f]++
	in.mu.Unlock()
}

// attempt bumps and returns the per-path read attempt counter (1-based).
func (in *Injector) attempt(path string) int {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.seen[path]++
	return in.seen[path]
}

// ReadChunk implements ingest.Source.
func (in *Injector) ReadChunk(ctx context.Context, path string) ([]byte, error) {
	switch f := in.FaultFor(path); f {
	case Missing:
		in.record(f)
		return nil, fmt.Errorf("faults: %s: %w", path, fs.ErrNotExist)
	case Transient:
		if in.attempt(path) <= in.cfg.FailCount {
			in.record(f)
			return nil, retry.Transientf("faults: %s: resource temporarily unavailable", path)
		}
	case Delayed:
		if in.attempt(path) <= in.cfg.FailCount {
			in.record(f)
			return nil, retry.Transient(fmt.Errorf("faults: %s not yet published: %w", path, fs.ErrNotExist))
		}
	case Truncated:
		data, err := in.src.ReadChunk(ctx, path)
		if err != nil {
			return nil, err
		}
		in.record(f)
		return data[:int(float64(len(data))*in.cfg.TruncateFrac)], nil
	case Corrupted:
		data, err := in.src.ReadChunk(ctx, path)
		if err != nil {
			return nil, err
		}
		in.record(f)
		out := append([]byte(nil), data...)
		// Flip a deterministic handful of bytes.
		rng := rand.New(rand.NewSource(int64(fnvHash(path)) ^ in.cfg.Seed))
		for i := 0; i < 4 && len(out) > 0; i++ {
			out[rng.Intn(len(out))] ^= 0xFF
		}
		return out, nil
	}
	return in.src.ReadChunk(ctx, path)
}

func fnvHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
