package parallel

import (
	"sync"
	"sync/atomic"
	"time"

	"gdeltmine/internal/obs"
)

// This file implements the persistent work-stealing pool behind every
// multi-worker loop in the package. The design is built around one
// invariant that makes nested parallelism deadlock-free by construction:
//
//   Pool queues hold *advertisements* (hints that a scope has claimable
//   runners), never exclusive ownership of work. The goroutine that joins
//   a scope first claims and executes every runner not yet taken, and only
//   then waits — so it waits exclusively on runners that are actively
//   executing on other goroutines. By induction on nesting depth those
//   always finish, even when every pool worker is blocked in a join of its
//   own (the old spawn-and-join implementation could not make that claim
//   once merges themselves ran parallel loops).
//
// Affinity falls out of the queue topology: a scope spawned by a pool
// worker is advertised on that worker's own deque, which the owner pops
// LIFO — it keeps working the shard it started, remaps and postings still
// cache-warm — while idle peers steal FIFO, taking the oldest (coarsest)
// scope first. Advertisements are droppable hints; completion never
// depends on one being seen.

var (
	mPoolStarts = obs.Default.Counter("parallel_pool_starts_total",
		"process-default work-stealing pools started (stays 1 for the process lifetime)")
	mPoolBuilds = obs.Default.Counter("parallel_pool_builds_total",
		"work-stealing pools constructed, including private test pools")
	mPoolWorkers = obs.Default.Gauge("parallel_pool_workers",
		"goroutines in the process-default work-stealing pool")
	mPoolTasks = obs.Default.Counter("parallel_pool_tasks_total",
		"scope runners executed, by joiners and pool workers alike")
	mPoolSteals = obs.Default.Counter("parallel_pool_steals_total",
		"scope advertisements taken from another worker's deque")
	mPoolParks = obs.Default.Counter("parallel_pool_parks_total",
		"times a pool worker found no claimable work and parked")
	mPoolBusy = obs.Default.Counter("parallel_pool_busy_nanos_total",
		"nanoseconds participants spent executing runners (utilization numerator)")
	mPoolDispatch = obs.Default.Histogram("parallel_pool_dispatch_seconds",
		"delay between a scope being posted and a pool worker attaching to it",
		obs.LatencyBuckets)
	mPoolTaskSeconds = obs.Default.Histogram("parallel_pool_task_seconds",
		"single runner execution latency", obs.LatencyBuckets)
	mWorkerCacheHits = obs.Default.Counter("parallel_worker_cache_hits_total",
		"accumulator gets served from a worker-local freelist")
)

// scope is one parallel construct in flight: nrun logical runners drained
// through the atomic claim cursor by whoever participates — the joining
// goroutine plus any pool workers that picked up an advertisement. A
// runner index is executed exactly once; fin closes when the last one
// finishes.
type scope struct {
	run    func(w *Worker, runner int)
	claim  atomic.Int32
	done   atomic.Int32
	nrun   int32
	fin    chan struct{}
	posted time.Time
}

func (s *scope) exec(w *Worker, i int) {
	start := time.Now()
	s.run(w, i)
	d := time.Since(start)
	mPoolBusy.Add(d.Nanoseconds())
	mPoolTaskSeconds.Observe(d.Seconds())
	mPoolTasks.Inc()
	if s.done.Add(1) == s.nrun {
		close(s.fin)
	}
}

// join makes the calling goroutine a participant: it claims and executes
// every runner not yet taken, then waits for the ones stolen by other
// participants. It never returns early — cancellation is observed by the
// runners themselves, between grains — so when join returns, no task of
// this scope exists anywhere in the pool. That is the drain guarantee the
// cancellation battery pins: a cancelled view finishes its in-flight
// grains and leaves nothing queued.
func (s *scope) join(w *Worker) {
	for {
		i := s.claim.Add(1) - 1
		if i >= s.nrun {
			break
		}
		s.exec(w, int(i))
	}
	<-s.fin
}

// workerCacheSlots bounds each per-worker accumulator freelist; overflow
// falls back to the shared sync.Pool.
const workerCacheSlots = 8

// Worker is one goroutine of a Pool plus its scratch state: a deque of
// scope advertisements and freelists of accumulator buffers keyed to this
// worker, so the kernels of a shard this worker keeps executing reuse the
// same memory run after run. Freelists are only ever touched from the
// worker's own goroutine (or, for the nil Worker, from the caller's) and
// need no locking.
type Worker struct {
	pool *Pool
	id   int

	mu sync.Mutex
	dq []*scope

	i64 [][]int64
	f64 [][]float64
}

// Pool returns the pool this worker belongs to.
func (w *Worker) Pool() *Pool { return w.pool }

// ID returns the worker's index within its pool.
func (w *Worker) ID() int { return w.id }

// GetInt64 returns a zeroed length-n slice, preferring this worker's local
// freelist over the shared pool. Safe on a nil receiver — callers not
// running on a pool worker fall through to the shared sync.Pool.
func (w *Worker) GetInt64(n int) []int64 {
	if w != nil {
		for i := len(w.i64) - 1; i >= 0; i-- {
			if cap(w.i64[i]) >= n {
				s := w.i64[i][:n]
				last := len(w.i64) - 1
				w.i64[i] = w.i64[last]
				w.i64[last] = nil
				w.i64 = w.i64[:last]
				clear(s)
				mWorkerCacheHits.Inc()
				return s
			}
		}
	}
	return GetInt64(n)
}

// PutInt64 returns a slice obtained from GetInt64 to this worker's
// freelist (or the shared pool when nil, or when the freelist is full).
func (w *Worker) PutInt64(s []int64) {
	if s == nil {
		return
	}
	if w != nil && len(w.i64) < workerCacheSlots {
		w.i64 = append(w.i64, s)
		return
	}
	PutInt64(s)
}

// GetFloat64 is GetInt64's float64 counterpart.
func (w *Worker) GetFloat64(n int) []float64 {
	if w != nil {
		for i := len(w.f64) - 1; i >= 0; i-- {
			if cap(w.f64[i]) >= n {
				s := w.f64[i][:n]
				last := len(w.f64) - 1
				w.f64[i] = w.f64[last]
				w.f64[last] = nil
				w.f64 = w.f64[:last]
				clear(s)
				mWorkerCacheHits.Inc()
				return s
			}
		}
	}
	return GetFloat64(n)
}

// PutFloat64 is PutInt64's float64 counterpart.
func (w *Worker) PutFloat64(s []float64) {
	if s == nil {
		return
	}
	if w != nil && len(w.f64) < workerCacheSlots {
		w.f64 = append(w.f64, s)
		return
	}
	PutFloat64(s)
}

// Pool is a persistent set of worker goroutines executing scope runners.
// One default pool serves the whole process (see Default); tests build
// private pools to exercise multi-worker interleavings regardless of
// GOMAXPROCS.
type Pool struct {
	workers []*Worker
	inject  chan *scope   // advertisements from non-pool goroutines
	wake    chan struct{} // nudges parked workers to rescan the deques
	stop    chan struct{}
}

// NewPool starts a pool with n worker goroutines (GOMAXPROCS when n <= 0).
func NewPool(n int) *Pool {
	if n <= 0 {
		n = DefaultWorkers()
	}
	p := &Pool{
		workers: make([]*Worker, n),
		inject:  make(chan *scope, 4*n),
		wake:    make(chan struct{}, n),
		stop:    make(chan struct{}),
	}
	for i := range p.workers {
		p.workers[i] = &Worker{pool: p, id: i}
	}
	for _, w := range p.workers {
		go w.loop()
	}
	mPoolBuilds.Inc()
	return p
}

// Size returns the number of worker goroutines.
func (p *Pool) Size() int { return len(p.workers) }

// Close stops the pool's workers once they go idle. Joins in flight still
// complete — joiners are self-sufficient — so Close is safe at any time,
// but only private test pools are ever closed; the default pool lives for
// the process.
func (p *Pool) Close() { close(p.stop) }

var (
	defaultPool *Pool
	defaultOnce sync.Once
)

// Default returns the lazily-started process-wide pool, sized to
// GOMAXPROCS at first use. Exactly one default pool exists per process:
// parallel_pool_starts_total stays at 1 no matter how many queries run,
// which ci.sh's singleton smoke asserts.
func Default() *Pool {
	defaultOnce.Do(func() {
		defaultPool = NewPool(DefaultWorkers())
		mPoolStarts.Inc()
		mPoolWorkers.Set(float64(defaultPool.Size()))
	})
	return defaultPool
}

// pool resolves the pool a loop should advertise on: the binding worker's
// own pool first (affinity), then an explicit override, then the default.
func (o Options) pool() *Pool {
	if o.Worker != nil {
		return o.Worker.pool
	}
	if o.Pool != nil {
		return o.Pool
	}
	return Default()
}

func (p *Pool) newScope(n int, run func(w *Worker, runner int)) *scope {
	return &scope{run: run, nrun: int32(n), fin: make(chan struct{}), posted: time.Now()}
}

// advertise posts up to ads hints for s. From a pool worker the hints go
// to that worker's own deque (affinity: the owner pops LIFO and keeps
// working the shard it started, idle peers steal FIFO); from any other
// goroutine they go to the injection channel. Hints are droppable — if a
// queue is full the joiner executes the runners itself.
func (p *Pool) advertise(s *scope, from *Worker, ads int) {
	if ads > int(s.nrun) {
		ads = int(s.nrun)
	}
	if ads <= 0 {
		return
	}
	if from != nil && from.pool == p {
		from.mu.Lock()
		for i := 0; i < ads; i++ {
			from.dq = append(from.dq, s)
		}
		from.mu.Unlock()
	} else {
		posted := 0
		for i := 0; i < ads; i++ {
			select {
			case p.inject <- s:
				posted++
			default:
			}
		}
		ads = posted
	}
	for i := 0; i < ads; i++ {
		select {
		case p.wake <- struct{}{}:
		default:
			return
		}
	}
}

func (w *Worker) loop() {
	p := w.pool
	for {
		if s := w.pop(); s != nil {
			w.attach(s, false)
			continue
		}
		if s := w.steal(); s != nil {
			w.attach(s, true)
			continue
		}
		mPoolParks.Inc()
		select {
		case s := <-p.inject:
			w.attach(s, false)
		case <-p.wake:
		case <-p.stop:
			return
		}
	}
}

// pop takes the newest advertisement from the worker's own deque (LIFO:
// the most recently spawned scope is the one whose data is cache-warm).
func (w *Worker) pop() *scope {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n := len(w.dq); n > 0 {
		s := w.dq[n-1]
		w.dq[n-1] = nil
		w.dq = w.dq[:n-1]
		return s
	}
	return nil
}

// steal takes the oldest advertisement from another worker's deque (FIFO:
// the oldest scope is the coarsest — most work left to share).
func (w *Worker) steal() *scope {
	ws := w.pool.workers
	for off := 1; off < len(ws); off++ {
		v := ws[(w.id+off)%len(ws)]
		v.mu.Lock()
		if n := len(v.dq); n > 0 {
			s := v.dq[0]
			copy(v.dq, v.dq[1:])
			v.dq[n-1] = nil
			v.dq = v.dq[:n-1]
			v.mu.Unlock()
			return s
		}
		v.mu.Unlock()
	}
	return nil
}

// attach claims runners from s until its cursor is exhausted. Stale
// advertisements (scope already drained) cost one atomic add. The first
// successful claim records dispatch latency and, when the hint came from
// another worker's deque, the steal.
func (w *Worker) attach(s *scope, stolen bool) {
	first := true
	for {
		i := s.claim.Add(1) - 1
		if i >= s.nrun {
			return
		}
		if first {
			first = false
			mPoolDispatch.Observe(time.Since(s.posted).Seconds())
			if stolen {
				mPoolSteals.Inc()
			}
		}
		s.exec(w, int(i))
	}
}

// FanOut runs job(w, i) for each i in [0, k) as top-level pool tasks: the
// cross-shard primitive. All K shard kernels become concurrently claimable
// runners, and each job receives the pool worker executing it (nil when a
// non-pool joiner runs it) to bind into inner loop Options — that handle
// is what routes a shard's inner grains to the worker that started the
// shard and keys accumulator reuse. When the effective worker count is 1
// the jobs run inline, sequentially. Jobs observe cancellation between
// (not during) jobs; a job already claimed when the context fires is
// skipped. FanOut returns only after every claimed job has finished.
func FanOut(k int, opt Options, job func(w *Worker, i int)) {
	if k <= 0 || opt.cancelled() {
		return
	}
	c := opt.workers(k)
	if c == 1 || k == 1 {
		for i := 0; i < k && !opt.cancelled(); i++ {
			job(opt.Worker, i)
		}
		return
	}
	p := opt.pool()
	s := p.newScope(k, func(w *Worker, i int) {
		if opt.cancelled() {
			return
		}
		job(w, i)
	})
	p.advertise(s, opt.Worker, c-1)
	s.join(opt.Worker)
}
