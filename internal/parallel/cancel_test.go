package parallel

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestForOptCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	for _, static := range []bool{false, true} {
		for _, workers := range []int{1, 4} {
			ForOpt(1_000_000, Options{Workers: workers, Static: static, Context: ctx},
				func(lo, hi int) { calls.Add(1) })
		}
	}
	if calls.Load() != 0 {
		t.Fatalf("cancelled loop ran %d grains, want 0", calls.Load())
	}
}

// TestForOptStopsEarly cancels mid-scan and checks the loop quit well short
// of the full index space: cancellation latency is bounded by one grain per
// worker, not by the remaining work.
func TestForOptStopsEarly(t *testing.T) {
	const n = 1 << 20
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"dynamic", Options{Workers: 4, Grain: 64}},
		{"static", Options{Workers: 4, Grain: 64, Static: true}},
		{"single", Options{Workers: 1, Grain: 64}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			opt := tc.opt
			opt.Context = ctx
			var visited atomic.Int64
			ForOpt(n, opt, func(lo, hi int) {
				if visited.Add(int64(hi-lo)) >= 4*64 {
					cancel()
				}
			})
			got := visited.Load()
			if got >= n {
				t.Fatalf("visited all %d iterations despite cancellation", n)
			}
			// Workers may each finish the grain in flight plus claim one
			// more before observing the cancel; anything near n means the
			// check isn't happening.
			if got > n/2 {
				t.Fatalf("visited %d of %d iterations after cancel — cancellation too slow", got, n)
			}
		})
	}
}

func TestForOptWithoutContextUnchanged(t *testing.T) {
	var visited atomic.Int64
	for _, static := range []bool{false, true} {
		visited.Store(0)
		ForOpt(10_000, Options{Workers: 4, Static: static}, func(lo, hi int) {
			visited.Add(int64(hi - lo))
		})
		if visited.Load() != 10_000 {
			t.Fatalf("static=%v: visited %d, want 10000", static, visited.Load())
		}
	}
}

func TestMapReduceCancelledReturnsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got := MapReduce(1_000_000, Options{Workers: 4, Context: ctx},
		func() int64 { return 0 },
		func(acc int64, lo, hi int) int64 { return acc + int64(hi-lo) },
		func(dst, src int64) int64 { return dst + src })
	if got != 0 {
		t.Fatalf("pre-cancelled MapReduce processed %d iterations, want 0", got)
	}

	// Mid-scan cancel: result is a partial sum, strictly less than n.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var seen atomic.Int64
	const n = 1 << 20
	got = MapReduce(n, Options{Workers: 4, Grain: 64, Context: ctx2},
		func() int64 { return 0 },
		func(acc int64, lo, hi int) int64 {
			if seen.Add(int64(hi-lo)) >= 512 {
				cancel2()
			}
			return acc + int64(hi-lo)
		},
		func(dst, src int64) int64 { return dst + src })
	if got >= n {
		t.Fatalf("MapReduce summed all %d iterations despite cancellation", n)
	}
	if got == 0 {
		t.Fatal("MapReduce returned zero partial; grains before cancel should count")
	}
}
