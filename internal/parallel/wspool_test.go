package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// testPool builds a private multi-worker pool so the stealing and affinity
// paths are exercised even when GOMAXPROCS is 1 (goroutines still
// interleave on one core).
func testPool(t *testing.T, n int) *Pool {
	t.Helper()
	p := NewPool(n)
	t.Cleanup(p.Close)
	return p
}

func TestFanOutCoversEveryIndexOnce(t *testing.T) {
	p := testPool(t, 4)
	for _, k := range []int{1, 2, 3, 5, 16, 100} {
		for _, workers := range []int{1, 2, 4, 8} {
			hits := make([]int32, k)
			FanOut(k, Options{Workers: workers, Pool: p}, func(_ *Worker, i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("k=%d workers=%d: job %d ran %d times", k, workers, i, h)
				}
			}
		}
	}
}

// TestFanOutNestedInsidePoolTask pins the deadlock-freedom invariant: a
// fan-out job running ON a pool worker spawns inner loops and fan-outs,
// with a pool far smaller than the task tree, and everything completes.
func TestFanOutNestedInsidePoolTask(t *testing.T) {
	p := testPool(t, 2)
	var total atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		FanOut(8, Options{Workers: 8, Pool: p}, func(w *Worker, i int) {
			// Inner fan-out bound to the executing worker (affinity path).
			FanOut(4, Options{Workers: 4, Worker: w, Pool: p}, func(w2 *Worker, j int) {
				opt := Options{Workers: 4, Worker: w2, Pool: p, Grain: 1}
				total.Add(SumInt64(100, opt, func(int) int64 { return 1 }))
			})
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested fan-out deadlocked")
	}
	if got := total.Load(); got != 8*4*100 {
		t.Fatalf("nested sum = %d, want %d", got, 8*4*100)
	}
}

// TestPoolWorkersStealAcrossShards pins that idle workers actually pick up
// another participant's advertised work: K skewed "shards" fan out on a
// multi-worker pool and the runners must not all execute on the joining
// goroutine once the pool has had a chance to attach.
func TestPoolWorkersStealAcrossShards(t *testing.T) {
	p := testPool(t, 4)
	var onWorker atomic.Int64
	var release sync.WaitGroup
	release.Add(1)
	// Occupy nothing; just fan out slow jobs so the pool workers have time
	// to see the advertisements before the joiner drains every runner.
	FanOut(64, Options{Workers: 4, Pool: p}, func(w *Worker, i int) {
		if w != nil {
			onWorker.Add(1)
		}
		time.Sleep(time.Millisecond)
	})
	release.Done()
	if onWorker.Load() == 0 {
		t.Fatal("no fan-out job ever ran on a pool worker")
	}
}

func TestFanOutCancelledSkipsRemainingJobs(t *testing.T) {
	p := testPool(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int32
	FanOut(100, Options{Workers: 4, Pool: p, Context: ctx}, func(_ *Worker, i int) {
		if ran.Add(1) == 3 {
			cancel()
		}
	})
	// At least the three jobs before cancel ran; far fewer than 100 run
	// afterwards (participants already mid-claim may slip one job each).
	if got := ran.Load(); got < 3 || got > 10 {
		t.Fatalf("ran %d jobs, want ~3 (cancelled)", got)
	}
	// The scope must be fully drained: join returned, so a second fan-out
	// on the same pool works and the pool has no stuck tasks.
	var again atomic.Int32
	FanOut(4, Options{Workers: 4, Pool: p}, func(_ *Worker, i int) { again.Add(1) })
	if again.Load() != 4 {
		t.Fatalf("pool wedged after cancelled fan-out: %d of 4 jobs ran", again.Load())
	}
}

// TestJoinDrainsWithoutPoolWorkers proves joiner self-sufficiency: even
// with a pool whose workers never run (stopped immediately), every loop
// and fan-out completes because the joining goroutine executes all
// runners itself.
func TestJoinDrainsWithoutPoolWorkers(t *testing.T) {
	p := NewPool(2)
	p.Close()
	time.Sleep(10 * time.Millisecond) // let workers observe stop
	var n atomic.Int32
	done := make(chan struct{})
	go func() {
		defer close(done)
		FanOut(8, Options{Workers: 4, Pool: p}, func(_ *Worker, i int) { n.Add(1) })
		ForOpt(1000, Options{Workers: 4, Pool: p}, func(lo, hi int) {
			n.Add(int32(hi - lo))
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("join did not drain on a dead pool")
	}
	if got := n.Load(); got != 8+1000 {
		t.Fatalf("covered %d, want %d", got, 8+1000)
	}
}

func TestWorkerAccumulatorCacheReuse(t *testing.T) {
	w := &Worker{} // freelist behavior needs no running pool
	a := w.GetInt64(128)
	for i := range a {
		a[i] = 7
	}
	w.PutInt64(a)
	b := w.GetInt64(64)
	if &b[0] != &a[0] {
		t.Error("worker freelist did not reuse the buffer")
	}
	for i, v := range b {
		if v != 0 {
			t.Fatalf("reused worker buffer not zeroed at %d: %d", i, v)
		}
	}
	w.PutInt64(b)

	f := w.GetFloat64(32)
	f[0] = 1.5
	w.PutFloat64(f)
	g := w.GetFloat64(32)
	if g[0] != 0 {
		t.Error("reused worker float buffer not zeroed")
	}

	// A nil worker degrades to the shared pool.
	var nilw *Worker
	s := nilw.GetInt64(16)
	if len(s) != 16 {
		t.Fatalf("nil worker GetInt64 len %d", len(s))
	}
	nilw.PutInt64(s)
}

func TestWorkerCacheOverflowFallsBackToSharedPool(t *testing.T) {
	w := &Worker{}
	for i := 0; i < workerCacheSlots+4; i++ {
		w.PutInt64(make([]int64, 8))
	}
	if len(w.i64) != workerCacheSlots {
		t.Fatalf("freelist holds %d slots, cap is %d", len(w.i64), workerCacheSlots)
	}
}

// TestDefaultPoolIsSingleton asserts the process-default pool starts once
// no matter how many loops run — the property the ci.sh smoke checks via
// the parallel_pool_starts_total counter.
func TestDefaultPoolIsSingleton(t *testing.T) {
	for i := 0; i < 8; i++ {
		ForOpt(10_000, Options{Workers: 4}, func(lo, hi int) {})
	}
	if Default() != Default() {
		t.Fatal("Default returned two pools")
	}
	if got := mPoolStarts.Value(); got != 1 {
		t.Fatalf("parallel_pool_starts_total = %d, want 1", got)
	}
}

// TestPoolNoGoroutineLeakAcrossLoops: the whole point of the persistent
// pool is that query execution stops spawning per-loop goroutines. After
// warmup, running many loops must not grow the goroutine count.
func TestPoolNoGoroutineLeakAcrossLoops(t *testing.T) {
	p := testPool(t, 4)
	opt := Options{Workers: 4, Pool: p}
	ForOpt(1000, opt, func(lo, hi int) {}) // warm
	before := runtime.NumGoroutine()
	for i := 0; i < 200; i++ {
		ForOpt(1000, opt, func(lo, hi int) {})
		FanOut(5, opt, func(_ *Worker, _ int) {})
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines grew from %d to %d across 200 pooled loops", before, after)
	}
}

func TestMapReduceWWorkerKeyedAllocation(t *testing.T) {
	p := testPool(t, 4)
	got := MapReduceW(10_000, Options{Workers: 4, Pool: p, Grain: 64},
		func(w *Worker) []int64 { return w.GetInt64(4) },
		func(acc []int64, lo, hi int) []int64 {
			for i := lo; i < hi; i++ {
				acc[i%4]++
			}
			return acc
		},
		func(w *Worker, dst, src []int64) []int64 {
			for i, v := range src {
				dst[i] += v
			}
			w.PutInt64(src)
			return dst
		})
	var total int64
	for _, v := range got {
		total += v
	}
	if total != 10_000 {
		t.Fatalf("MapReduceW covered %d of 10000", total)
	}
}
