package parallel

import (
	"sync"

	"gdeltmine/internal/obs"
)

// Pooled accumulator buffers for MapReduce partials and selection vectors.
// Scan kernels allocate one accumulator per worker per scan; on a serving
// host running thousands of queries that is steady GC churn for buffers
// with identical shapes. The pools below recycle them: a kernel Gets a
// zeroed buffer per worker, the merge step folds each source partial into
// the destination and Puts the source back, and only the final merged
// result escapes to the caller. The hit/alloc counters make the churn
// observable — allocations per scan is their ratio (exposed as a gauge by
// the engine).
var (
	mPoolGets = obs.Default.Counter("parallel_pool_gets_total",
		"pooled accumulator buffers requested by scan kernels")
	mPoolAllocs = obs.Default.Counter("parallel_pool_allocs_total",
		"pool misses that fell through to a fresh allocation")
)

// PoolGets returns the number of pooled-buffer requests so far.
func PoolGets() int64 { return mPoolGets.Value() }

// PoolAllocs returns the number of pool misses (fresh allocations) so far.
func PoolAllocs() int64 { return mPoolAllocs.Value() }

var (
	int64Pool   sync.Pool
	float64Pool sync.Pool
	int32Pool   sync.Pool
)

// GetInt64 returns a zeroed []int64 of length n, reusing pooled capacity
// when available. Pair with PutInt64 once the buffer's contents have been
// folded elsewhere.
func GetInt64(n int) []int64 {
	mPoolGets.Inc()
	if v := int64Pool.Get(); v != nil {
		s := *v.(*[]int64)
		if cap(s) >= n {
			s = s[:n]
			clear(s)
			return s
		}
	}
	mPoolAllocs.Inc()
	return make([]int64, n)
}

// PutInt64 recycles a buffer obtained from GetInt64. The caller must not
// retain any reference to it afterwards.
func PutInt64(s []int64) {
	if cap(s) == 0 {
		return
	}
	int64Pool.Put(&s)
}

// GetFloat64 returns a zeroed []float64 of length n from the pool.
func GetFloat64(n int) []float64 {
	mPoolGets.Inc()
	if v := float64Pool.Get(); v != nil {
		s := *v.(*[]float64)
		if cap(s) >= n {
			s = s[:n]
			clear(s)
			return s
		}
	}
	mPoolAllocs.Inc()
	return make([]float64, n)
}

// PutFloat64 recycles a buffer obtained from GetFloat64.
func PutFloat64(s []float64) {
	if cap(s) == 0 {
		return
	}
	float64Pool.Put(&s)
}

// GetInt32 returns a zeroed []int32 of length n from the pool. Selection
// vectors use GetInt32(0) and append into the pooled capacity.
func GetInt32(n int) []int32 {
	mPoolGets.Inc()
	if v := int32Pool.Get(); v != nil {
		s := *v.(*[]int32)
		if cap(s) >= n {
			s = s[:n]
			clear(s)
			return s
		}
	}
	mPoolAllocs.Inc()
	if n < selBlock {
		return make([]int32, n, selBlock)
	}
	return make([]int32, n)
}

// PutInt32 recycles a buffer obtained from GetInt32.
func PutInt32(s []int32) {
	if cap(s) == 0 {
		return
	}
	int32Pool.Put(&s)
}

// selBlock is the minimum capacity of a fresh selection vector: one
// default-maximum grain, so a predicate stage selecting every row of its
// grain never reallocates.
const selBlock = 8192
