package parallel

import "sync/atomic"

// cursor hands out chunks of an index space to dynamic-scheduling workers.
// It is padded to its own cache line so the hot Add does not false-share
// with neighbouring allocations.
type cursor struct {
	_ [64]byte
	v atomic.Int64
	_ [64]byte
}

func newCursor() *cursor { return &cursor{} }

// next claims the next chunk of at most grain indices below limit and
// returns it as [lo, hi). When the space is exhausted it returns lo >= hi.
func (c *cursor) next(grain, limit int) (lo, hi int) {
	lo = int(c.v.Add(int64(grain))) - grain
	if lo >= limit {
		return limit, limit
	}
	hi = lo + grain
	if hi > limit {
		hi = limit
	}
	return lo, hi
}

// paddedInt64 is an int64 alone on its cache line.
type paddedInt64 struct {
	v int64
	_ [56]byte
}

// ShardedCounter is a contention-free counter: each worker increments its own
// cache-line-padded shard and Value folds the shards. It mirrors the
// per-thread counters a NUMA-aware OpenMP code would keep per core.
type ShardedCounter struct {
	shards []paddedInt64
}

// NewShardedCounter returns a counter with one shard per worker. workers <= 0
// means DefaultWorkers().
func NewShardedCounter(workers int) *ShardedCounter {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	return &ShardedCounter{shards: make([]paddedInt64, workers)}
}

// Shards returns the number of shards.
func (c *ShardedCounter) Shards() int { return len(c.shards) }

// Add adds delta to the given worker's shard. worker must be in
// [0, Shards()). Each shard must only be written by its owning worker;
// no atomics are used on the fast path.
func (c *ShardedCounter) Add(worker int, delta int64) {
	c.shards[worker].v += delta
}

// AtomicAdd adds delta to the shard chosen by worker modulo the shard count
// using an atomic operation, for callers without exclusive shard ownership.
func (c *ShardedCounter) AtomicAdd(worker int, delta int64) {
	atomic.AddInt64(&c.shards[worker%len(c.shards)].v, delta)
}

// Value folds all shards and returns the total. It must only be called after
// the writing workers have finished (e.g. after a For loop returns).
func (c *ShardedCounter) Value() int64 {
	var total int64
	for i := range c.shards {
		total += atomic.LoadInt64(&c.shards[i].v)
	}
	return total
}

// Reset zeroes all shards.
func (c *ShardedCounter) Reset() {
	for i := range c.shards {
		atomic.StoreInt64(&c.shards[i].v, 0)
	}
}
