package parallel

import (
	"testing"

	"gdeltmine/internal/obs"
)

// TestScanMetricsAdvance verifies that parallel loops feed the obs layer:
// scans, covered items and grains all move, and dynamic multi-worker scans
// record an imbalance sample.
func TestScanMetricsAdvance(t *testing.T) {
	before := obs.Default.Snapshot()
	scans0 := before.Find("parallel_scans_total").Value
	items0 := before.Find("parallel_items_total").Value
	imb0 := before.Find("parallel_imbalance_ratio").Count

	const n = 10000
	ForOpt(n, Options{Workers: 4}, func(lo, hi int) {})
	ForOpt(n, Options{Workers: 1}, func(lo, hi int) {})
	_ = MapReduce(n, Options{Workers: 4},
		func() int64 { return 0 },
		func(acc int64, lo, hi int) int64 { return acc + int64(hi-lo) },
		func(a, b int64) int64 { return a + b })

	after := obs.Default.Snapshot()
	if got := after.Find("parallel_scans_total").Value - scans0; got != 3 {
		t.Fatalf("scans advanced by %v, want 3", got)
	}
	if got := after.Find("parallel_items_total").Value - items0; got != 3*n {
		t.Fatalf("items advanced by %v, want %d", got, 3*n)
	}
	if got := after.Find("parallel_imbalance_ratio").Count - imb0; got != 2 {
		t.Fatalf("imbalance samples advanced by %v, want 2 (the two dynamic scans)", got)
	}
	// The imbalance ratio is >= 1 by construction; the histogram must have
	// no mass below its first finite bucket's lower range start of 1.
	h := after.Find("parallel_imbalance_ratio")
	if h.Sum < float64(h.Count) {
		t.Fatalf("imbalance sum %v smaller than count %v — ratios below 1 recorded", h.Sum, h.Count)
	}
}
