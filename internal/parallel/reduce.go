package parallel

import "sync"

// MapReduce runs a per-worker partial computation over [0, n) and merges the
// partials. newPartial allocates a worker-local accumulator, body folds a
// contiguous index range into it, and merge folds one partial into another.
// The final merged partial is returned. This is the canonical pattern for the
// paper's "parallel aggregated queries": each worker owns a private
// accumulator (histogram, matrix block, counter set) and the results are
// combined once at the end, avoiding shared-write contention.
func MapReduce[A any](n int, opt Options, newPartial func() A, body func(acc A, lo, hi int) A, merge func(dst, src A) A) A {
	return MapReduceW(n, opt,
		func(*Worker) A { return newPartial() },
		body,
		func(_ *Worker, dst, src A) A { return merge(dst, src) })
}

// MapReduceW is MapReduce with worker-keyed allocation: newPartial receives
// the pool worker executing the runner (nil off-pool) so accumulators come
// from that worker's freelist, and merge receives the joining worker so
// released buffers return to it. Runners are scheduled on the
// work-stealing pool; a runner that never claims a grain allocates nothing
// and is skipped at merge time, which leaves results bit-identical for the
// package's pure dst += src merges.
func MapReduceW[A any](n int, opt Options, newPartial func(w *Worker) A, body func(acc A, lo, hi int) A, merge func(w *Worker, dst, src A) A) A {
	workers := opt.workers(max(n, 1))
	if n <= 0 || opt.cancelled() {
		return newPartial(opt.Worker)
	}
	if workers == 1 {
		defer recordScan(n, nil)
		if opt.Context == nil {
			return body(newPartial(opt.Worker), 0, n)
		}
		acc := newPartial(opt.Worker)
		grain := opt.grain(n, workers)
		for lo := 0; lo < n && !opt.cancelled(); lo += grain {
			hi := lo + grain
			if hi > n {
				hi = n
			}
			acc = body(acc, lo, hi)
		}
		return acc
	}
	grain := opt.grain(n, workers)
	cursor := newCursor()
	partials := make([]A, workers)
	touched := make([]bool, workers)
	perRunner := make([]int64, workers)
	p := opt.pool()
	s := p.newScope(workers, func(w *Worker, r int) {
		var acc A
		have := false
		for !opt.cancelled() {
			lo, hi := cursor.next(grain, n)
			if lo >= hi {
				break
			}
			if !have {
				have = true
				acc = newPartial(w)
			}
			perRunner[r]++
			acc = body(acc, lo, hi)
		}
		if have {
			partials[r] = acc
			touched[r] = true
		}
	})
	p.advertise(s, opt.Worker, workers-1)
	s.join(opt.Worker)
	recordScan(n, perRunner)
	k := 0
	for i, t := range touched {
		if t {
			partials[k] = partials[i]
			k++
		}
	}
	if k == 0 {
		// Cancelled before any grain was claimed: return an empty
		// accumulator, as the serial path would.
		return newPartial(opt.Worker)
	}
	return mergeTreeW(opt.Worker, partials[:k], merge)
}

// MergeTree folds partials pairwise into partials[0] and returns it; with
// four or more entries disjoint pairs merge concurrently, giving O(log n)
// merge latency. Exported for cross-shard reduction: internal/shard folds
// per-shard partial vectors and matrices through the same machinery the
// in-shard MapReduce uses. merge must be a pure dst += src fold. An empty
// slice returns the zero value.
func MergeTree[A any](partials []A, merge func(dst, src A) A) A {
	if len(partials) == 0 {
		var zero A
		return zero
	}
	return mergeTreeW(nil, partials, func(_ *Worker, dst, src A) A { return merge(dst, src) })
}

// mergeTreeW folds worker partials into partials[0]. With four or more
// partials it runs a pairwise merge tree — level k merges partials[i] and
// partials[i+2^k] concurrently for all even multiples i of 2^(k+1) — so a
// large accumulator (a per-worker contingency matrix, say) folds in
// O(log workers) merge latency instead of a serial O(workers) chain on one
// goroutine. The merge at index 0 runs on the calling goroutine and is
// handed w, so released buffers land in the joining worker's freelist;
// helper-goroutine merges get nil and fall back to the shared pool. merge
// may itself run parallel loops: helper goroutines join their own scopes
// self-sufficiently, so no pool capacity is required for progress.
func mergeTreeW[A any](w *Worker, partials []A, merge func(w *Worker, dst, src A) A) A {
	workers := len(partials)
	if workers < 4 {
		out := partials[0]
		for i := 1; i < workers; i++ {
			out = merge(w, out, partials[i])
		}
		return out
	}
	for stride := 1; stride < workers; stride *= 2 {
		var wg sync.WaitGroup
		for i := 2 * stride; i+stride < workers; i += 2 * stride {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				partials[i] = merge(nil, partials[i], partials[i+stride])
			}(i)
		}
		partials[0] = merge(w, partials[0], partials[stride])
		wg.Wait()
	}
	return partials[0]
}

// SumInt64 computes the sum of f(i) over [0, n) in parallel.
func SumInt64(n int, opt Options, f func(i int) int64) int64 {
	return MapReduce(n, opt,
		func() int64 { return 0 },
		func(acc int64, lo, hi int) int64 {
			for i := lo; i < hi; i++ {
				acc += f(i)
			}
			return acc
		},
		func(dst, src int64) int64 { return dst + src },
	)
}

// SumFloat64 computes the sum of f(i) over [0, n) in parallel. Each worker
// keeps a private partial sum, so results are deterministic up to the
// merge order of at most Workers partials.
func SumFloat64(n int, opt Options, f func(i int) float64) float64 {
	return MapReduce(n, opt,
		func() float64 { return 0 },
		func(acc float64, lo, hi int) float64 {
			for i := lo; i < hi; i++ {
				acc += f(i)
			}
			return acc
		},
		func(dst, src float64) float64 { return dst + src },
	)
}

// CountIf counts indices in [0, n) for which pred returns true.
func CountIf(n int, opt Options, pred func(i int) bool) int64 {
	return MapReduce(n, opt,
		func() int64 { return 0 },
		func(acc int64, lo, hi int) int64 {
			for i := lo; i < hi; i++ {
				if pred(i) {
					acc++
				}
			}
			return acc
		},
		func(dst, src int64) int64 { return dst + src },
	)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
