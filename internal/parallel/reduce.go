package parallel

import "sync"

// MapReduce runs a per-worker partial computation over [0, n) and merges the
// partials. newPartial allocates a worker-local accumulator, body folds a
// contiguous index range into it, and merge folds one partial into another.
// The final merged partial is returned. This is the canonical pattern for the
// paper's "parallel aggregated queries": each worker owns a private
// accumulator (histogram, matrix block, counter set) and the results are
// combined once at the end, avoiding shared-write contention.
func MapReduce[A any](n int, opt Options, newPartial func() A, body func(acc A, lo, hi int) A, merge func(dst, src A) A) A {
	workers := opt.workers(max(n, 1))
	if n <= 0 || opt.cancelled() {
		return newPartial()
	}
	if workers == 1 {
		defer recordScan(n, nil)
		if opt.Context == nil {
			return body(newPartial(), 0, n)
		}
		acc := newPartial()
		grain := opt.grain(n, workers)
		for lo := 0; lo < n && !opt.cancelled(); lo += grain {
			hi := lo + grain
			if hi > n {
				hi = n
			}
			acc = body(acc, lo, hi)
		}
		return acc
	}
	partials := make([]A, workers)
	perWorker := make([]int64, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	grain := opt.grain(n, workers)
	cursor := newCursor()
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			acc := newPartial()
			for !opt.cancelled() {
				lo, hi := cursor.next(grain, n)
				if lo >= hi {
					break
				}
				perWorker[w]++
				acc = body(acc, lo, hi)
			}
			partials[w] = acc
		}(w)
	}
	wg.Wait()
	recordScan(n, perWorker)
	return mergeTree(partials, merge)
}

// mergeTree folds worker partials into partials[0]. With four or more
// partials it runs a pairwise merge tree — level k merges partials[i] and
// partials[i+2^k] concurrently for all even multiples i of 2^(k+1) — so a
// large accumulator (a per-worker contingency matrix, say) folds in
// O(log workers) merge latency instead of a serial O(workers) chain on one
// goroutine. merge therefore runs concurrently on disjoint pairs; every
// merge in this package's callers is a pure dst += src fold, which is safe.
func mergeTree[A any](partials []A, merge func(dst, src A) A) A {
	workers := len(partials)
	if workers < 4 {
		out := partials[0]
		for w := 1; w < workers; w++ {
			out = merge(out, partials[w])
		}
		return out
	}
	for stride := 1; stride < workers; stride *= 2 {
		var wg sync.WaitGroup
		for i := 0; i+stride < workers; i += 2 * stride {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				partials[i] = merge(partials[i], partials[i+stride])
			}(i)
		}
		wg.Wait()
	}
	return partials[0]
}

// SumInt64 computes the sum of f(i) over [0, n) in parallel.
func SumInt64(n int, opt Options, f func(i int) int64) int64 {
	return MapReduce(n, opt,
		func() int64 { return 0 },
		func(acc int64, lo, hi int) int64 {
			for i := lo; i < hi; i++ {
				acc += f(i)
			}
			return acc
		},
		func(dst, src int64) int64 { return dst + src },
	)
}

// SumFloat64 computes the sum of f(i) over [0, n) in parallel. Each worker
// keeps a private partial sum, so results are deterministic up to the
// merge order of at most Workers partials.
func SumFloat64(n int, opt Options, f func(i int) float64) float64 {
	return MapReduce(n, opt,
		func() float64 { return 0 },
		func(acc float64, lo, hi int) float64 {
			for i := lo; i < hi; i++ {
				acc += f(i)
			}
			return acc
		},
		func(dst, src float64) float64 { return dst + src },
	)
}

// CountIf counts indices in [0, n) for which pred returns true.
func CountIf(n int, opt Options, pred func(i int) bool) int64 {
	return MapReduce(n, opt,
		func() int64 { return 0 },
		func(acc int64, lo, hi int) int64 {
			for i := lo; i < hi; i++ {
				if pred(i) {
					acc++
				}
			}
			return acc
		},
		func(dst, src int64) int64 { return dst + src },
	)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
