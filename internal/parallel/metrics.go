package parallel

import "gdeltmine/internal/obs"

// Scan-level observability: every parallel loop records how much work it
// covered and how evenly the dynamic scheduler spread it. The imbalance
// ratio is the OpenMP-style load-balance diagnostic the paper's Figure 12
// discussion implies: max grains claimed by one worker divided by the ideal
// equal share. A ratio near 1 means the atomic-cursor scheduling kept all
// workers busy; large ratios flag skewed grains (e.g. postings scans where
// one source dominates).
var (
	mScans = obs.Default.Counter("parallel_scans_total",
		"parallel loops executed (all scheduling modes)")
	mItems = obs.Default.Counter("parallel_items_total",
		"loop iterations covered by parallel scans")
	mGrains = obs.Default.Counter("parallel_grains_total",
		"work grains handed to workers")
	mImbalance = obs.Default.Histogram("parallel_imbalance_ratio",
		"per-scan max worker grain share over the ideal equal share",
		obs.RatioBuckets)
)

// recordScan folds one completed loop into the scan metrics. perWorker
// holds the number of grains each worker claimed; it is nil for serial and
// static loops, where balance is fixed by construction.
func recordScan(n int, perWorker []int64) {
	mScans.Inc()
	mItems.Add(int64(n))
	if perWorker == nil {
		mGrains.Inc()
		return
	}
	var total, max int64
	for _, g := range perWorker {
		total += g
		if g > max {
			max = g
		}
	}
	mGrains.Add(total)
	if total > 0 && len(perWorker) > 1 {
		mImbalance.Observe(float64(max) * float64(len(perWorker)) / float64(total))
	}
}
