package parallel

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestForCoversAllIndicesExactlyOnce(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 10000} {
		seen := make([]int32, n)
		For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&seen[i], 1)
			}
		})
		for i, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d index %d visited %d times", n, i, c)
			}
		}
	}
}

func TestForStaticCoversAllIndices(t *testing.T) {
	for _, n := range []int{1, 3, 64, 1000} {
		for _, w := range []int{1, 2, 3, 7, 16, 100} {
			seen := make([]int32, n)
			ForOpt(n, Options{Workers: w, Static: true}, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("n=%d w=%d index %d visited %d times", n, w, i, c)
				}
			}
		}
	}
}

func TestForZeroAndNegative(t *testing.T) {
	called := false
	For(0, func(lo, hi int) { called = true })
	For(-5, func(lo, hi int) { called = true })
	if called {
		t.Fatal("body called for empty range")
	}
}

func TestForSingleWorkerRunsInline(t *testing.T) {
	var calls int
	ForOpt(10, Options{Workers: 1}, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Fatalf("expected whole range, got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("expected exactly one inline call, got %d", calls)
	}
}

func TestForWorkersMatchesSerialSum(t *testing.T) {
	const n = 5000
	want := int64(n) * (n - 1) / 2
	for _, w := range []int{1, 2, 4, 8, 64} {
		var got atomic.Int64
		ForWorkers(n, w, func(lo, hi int) {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(i)
			}
			got.Add(s)
		})
		if got.Load() != want {
			t.Fatalf("workers=%d sum=%d want %d", w, got.Load(), want)
		}
	}
}

func TestGrainClamping(t *testing.T) {
	o := Options{}
	if g := o.grain(10, 4); g < 1 {
		t.Fatalf("grain %d < 1", g)
	}
	if g := o.grain(10_000_000, 1); g != 8192 {
		t.Fatalf("grain %d, want clamp at 8192", g)
	}
	o = Options{Grain: 17}
	if g := o.grain(1000, 4); g != 17 {
		t.Fatalf("explicit grain ignored: %d", g)
	}
}

// TestGrainSmallInputsFanOut pins the small-shard fix: the automatic grain
// never exceeds the ideal per-worker share, so a loop shorter than the old
// 64-iteration floor still splits across every worker instead of running
// as one oversized task while the others idle.
func TestGrainSmallInputsFanOut(t *testing.T) {
	o := Options{}
	for _, tc := range []struct{ n, workers, want int }{
		{100, 4, 25},    // below the floor: cap at ceil(n/workers)
		{10, 4, 3},      // tiny loop still yields 4 claimable grains
		{1, 8, 1},       // never below 1
		{256, 4, 64},    // floor engages exactly at the per-worker share
		{100_000, 4, 6250},
		{10_000_000, 4, 8192}, // ceiling unchanged
	} {
		if g := o.grain(tc.n, tc.workers); g != tc.want {
			t.Errorf("grain(%d, %d) = %d, want %d", tc.n, tc.workers, g, tc.want)
		}
	}
	// Every worker can claim at least one grain whenever n >= workers.
	for _, n := range []int{4, 7, 63, 64, 65, 1000} {
		for _, w := range []int{2, 4, 8} {
			if n < w {
				continue
			}
			g := o.grain(n, w)
			if chunks := (n + g - 1) / g; chunks < w {
				t.Errorf("grain(%d, %d) = %d yields %d chunks for %d workers", n, w, g, chunks, w)
			}
		}
	}
}

func TestWorkersClamping(t *testing.T) {
	o := Options{Workers: 100}
	if w := o.workers(3); w != 3 {
		t.Fatalf("workers should clamp to n: got %d", w)
	}
	o = Options{Workers: -1}
	if w := o.workers(1000); w != DefaultWorkers() {
		t.Fatalf("negative workers should default: got %d", w)
	}
}

func TestMapReduceSum(t *testing.T) {
	const n = 12345
	got := MapReduce(n, Options{Workers: 7},
		func() int64 { return 0 },
		func(acc int64, lo, hi int) int64 {
			for i := lo; i < hi; i++ {
				acc += int64(i)
			}
			return acc
		},
		func(dst, src int64) int64 { return dst + src },
	)
	want := int64(n) * (n - 1) / 2
	if got != want {
		t.Fatalf("got %d want %d", got, want)
	}
}

func TestMapReduceEmpty(t *testing.T) {
	got := MapReduce(0, Options{},
		func() int { return 41 },
		func(acc, lo, hi int) int { return acc + 1 },
		func(dst, src int) int { return dst + src },
	)
	if got != 41 {
		t.Fatalf("empty reduce should return fresh partial, got %d", got)
	}
}

func TestMapReduceSliceAccumulators(t *testing.T) {
	// Histogram accumulation: each worker owns a private histogram.
	const n, buckets = 100000, 13
	hist := MapReduce(n, Options{Workers: 5},
		func() []int64 { return make([]int64, buckets) },
		func(acc []int64, lo, hi int) []int64 {
			for i := lo; i < hi; i++ {
				acc[i%buckets]++
			}
			return acc
		},
		func(dst, src []int64) []int64 {
			for i := range dst {
				dst[i] += src[i]
			}
			return dst
		},
	)
	var total int64
	for _, c := range hist {
		total += c
	}
	if total != n {
		t.Fatalf("histogram total %d want %d", total, n)
	}
}

func TestSumInt64AndFloat64AndCountIf(t *testing.T) {
	const n = 10000
	si := SumInt64(n, Options{}, func(i int) int64 { return int64(i) })
	if want := int64(n) * (n - 1) / 2; si != want {
		t.Fatalf("SumInt64 %d want %d", si, want)
	}
	sf := SumFloat64(n, Options{}, func(i int) float64 { return 1.0 })
	if sf != float64(n) {
		t.Fatalf("SumFloat64 %v want %v", sf, float64(n))
	}
	c := CountIf(n, Options{}, func(i int) bool { return i%3 == 0 })
	want := int64((n + 2) / 3)
	if c != want {
		t.Fatalf("CountIf %d want %d", c, want)
	}
}

func TestSumInt64PropertyMatchesSerial(t *testing.T) {
	f := func(vals []int16, workers uint8) bool {
		var want int64
		for _, v := range vals {
			want += int64(v)
		}
		got := SumInt64(len(vals), Options{Workers: int(workers%16) + 1},
			func(i int) int64 { return int64(vals[i]) })
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForEachWorker(t *testing.T) {
	var mask atomic.Int64
	ForEachWorker(8, func(w, n int) {
		if n != 8 {
			t.Errorf("workers=%d want 8", n)
		}
		mask.Add(1 << w)
	})
	if mask.Load() != (1<<8)-1 {
		t.Fatalf("not all workers ran: mask=%b", mask.Load())
	}
}

func TestShardedCounter(t *testing.T) {
	c := NewShardedCounter(4)
	ForEachWorker(4, func(w, n int) {
		for i := 0; i < 1000; i++ {
			c.Add(w, 1)
		}
	})
	if c.Value() != 4000 {
		t.Fatalf("value %d want 4000", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("after reset: %d", c.Value())
	}
	c.AtomicAdd(9, 5) // wraps modulo shards
	if c.Value() != 5 {
		t.Fatalf("atomic add: %d", c.Value())
	}
	if c.Shards() != 4 {
		t.Fatalf("shards %d", c.Shards())
	}
}

func TestShardedCounterDefaultWorkers(t *testing.T) {
	c := NewShardedCounter(0)
	if c.Shards() != DefaultWorkers() {
		t.Fatalf("shards %d want %d", c.Shards(), DefaultWorkers())
	}
}

func TestCursorExhaustion(t *testing.T) {
	cur := newCursor()
	covered := 0
	for {
		lo, hi := cur.next(7, 100)
		if lo >= hi {
			break
		}
		covered += hi - lo
	}
	if covered != 100 {
		t.Fatalf("covered %d want 100", covered)
	}
	// Further calls stay exhausted.
	if lo, hi := cur.next(7, 100); lo < hi {
		t.Fatalf("cursor not exhausted: [%d,%d)", lo, hi)
	}
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers < 1")
	}
}
