package parallel

import (
	"sync"
	"testing"
)

func TestPooledBuffersComeBackZeroed(t *testing.T) {
	a := GetInt64(64)
	for i := range a {
		a[i] = int64(i) + 1
	}
	PutInt64(a)
	b := GetInt64(32) // smaller request may reuse the dirty 64-cap buffer
	if len(b) != 32 {
		t.Fatalf("GetInt64(32) returned len %d", len(b))
	}
	for i, v := range b {
		if v != 0 {
			t.Fatalf("reused buffer not zeroed at %d: %d", i, v)
		}
	}

	f := GetFloat64(16)
	f[3] = 1.5
	PutFloat64(f)
	g := GetFloat64(16)
	for i, v := range g {
		if v != 0 {
			t.Fatalf("reused float buffer not zeroed at %d: %v", i, v)
		}
	}

	s := GetInt32(0)
	if len(s) != 0 {
		t.Fatalf("GetInt32(0) returned len %d", len(s))
	}
	s = append(s, 1, 2, 3)
	PutInt32(s)
	s2 := GetInt32(0)
	if len(s2) != 0 {
		t.Fatalf("reused selection vector has len %d", len(s2))
	}
}

func TestPoolMetricsCountMisses(t *testing.T) {
	gets0, allocs0 := PoolGets(), PoolAllocs()
	buf := GetInt64(8)
	PutInt64(buf)
	if PoolGets() <= gets0 {
		t.Error("PoolGets did not advance")
	}
	if PoolAllocs() < allocs0 {
		t.Error("PoolAllocs went backwards")
	}
}

func TestMergeTreeMatchesSerialFold(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 4, 5, 8, 13} {
		partials := make([][]int64, workers)
		var want [4]int64
		for w := range partials {
			p := []int64{int64(w), int64(w * w), 1, -int64(w)}
			for i, v := range p {
				want[i] += v
			}
			partials[w] = p
		}
		got := MergeTree(partials, func(dst, src []int64) []int64 {
			for i, v := range src {
				dst[i] += v
			}
			return dst
		})
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d: mergeTree[%d] = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

// TestMergeTreeConcurrencySafe hammers MapReduce with pooled partials at a
// worker count that exercises the pairwise tree, verifying the fold is
// race-free and exact (run under -race in CI).
func TestMergeTreeConcurrencySafe(t *testing.T) {
	const n = 100000
	var wg sync.WaitGroup
	for iter := 0; iter < 8; iter++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := MapReduce(n, Options{Workers: 8},
				func() []int64 { return GetInt64(4) },
				func(acc []int64, lo, hi int) []int64 {
					for i := lo; i < hi; i++ {
						acc[i%4]++
					}
					return acc
				},
				func(dst, src []int64) []int64 {
					for i, v := range src {
						dst[i] += v
					}
					PutInt64(src)
					return dst
				},
			)
			var total int64
			for _, v := range res {
				total += v
			}
			PutInt64(res)
			if total != n {
				t.Errorf("merge lost rows: %d of %d", total, n)
			}
		}()
	}
	wg.Wait()
}
