package parallel

import (
	"sync/atomic"
	"testing"
)

// The scheduling ablation: static blocked partitioning versus dynamic
// chunk-stealing on uniform and skewed workloads. Dynamic scheduling is the
// default because news data is skewed (headline events make some row ranges
// far heavier than others).

func uniformWork(lo, hi int, sink *atomic.Int64) {
	var s int64
	for i := lo; i < hi; i++ {
		s += int64(i % 7)
	}
	sink.Add(s)
}

func skewedWork(lo, hi int, sink *atomic.Int64) {
	var s int64
	for i := lo; i < hi; i++ {
		// The top 1% of the index space is 100x heavier.
		reps := 1
		if i%100 == 0 {
			reps = 100
		}
		for r := 0; r < reps; r++ {
			s += int64(i % 7)
		}
	}
	sink.Add(s)
}

func BenchmarkForDynamicUniform(b *testing.B) {
	var sink atomic.Int64
	for i := 0; i < b.N; i++ {
		ForOpt(1_000_000, Options{}, func(lo, hi int) { uniformWork(lo, hi, &sink) })
	}
}

func BenchmarkForStaticUniform(b *testing.B) {
	var sink atomic.Int64
	for i := 0; i < b.N; i++ {
		ForOpt(1_000_000, Options{Static: true}, func(lo, hi int) { uniformWork(lo, hi, &sink) })
	}
}

func BenchmarkForDynamicSkewed(b *testing.B) {
	var sink atomic.Int64
	for i := 0; i < b.N; i++ {
		ForOpt(1_000_000, Options{}, func(lo, hi int) { skewedWork(lo, hi, &sink) })
	}
}

func BenchmarkForStaticSkewed(b *testing.B) {
	var sink atomic.Int64
	for i := 0; i < b.N; i++ {
		ForOpt(1_000_000, Options{Static: true}, func(lo, hi int) { skewedWork(lo, hi, &sink) })
	}
}

func BenchmarkMapReduceHistogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		MapReduce(1_000_000, Options{},
			func() []int64 { return make([]int64, 64) },
			func(acc []int64, lo, hi int) []int64 {
				for i := lo; i < hi; i++ {
					acc[i&63]++
				}
				return acc
			},
			func(dst, src []int64) []int64 {
				for i := range dst {
					dst[i] += src[i]
				}
				return dst
			})
	}
}

// BenchmarkShardedCounterVsAtomic quantifies why per-worker padded shards
// beat one shared atomic under contention.
func BenchmarkShardedCounter(b *testing.B) {
	c := NewShardedCounter(DefaultWorkers())
	b.RunParallel(func(pb *testing.PB) {
		w := 0
		for pb.Next() {
			c.AtomicAdd(w, 1)
			w++
		}
	})
}

func BenchmarkSingleAtomicCounter(b *testing.B) {
	var c atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}
