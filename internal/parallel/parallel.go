// Package parallel provides the data-parallel runtime used by the query
// engine: chunked parallel-for loops with static or dynamic scheduling,
// map-reduce helpers, and padded sharded accumulators.
//
// It plays the role OpenMP plays in the original C++ system: flat
// data-parallel iteration over row ranges with per-worker partial results
// that are merged at the end. All primitives are allocation-conscious and
// safe for repeated use on hot paths.
package parallel

import (
	"context"
	"runtime"
	"sync"
)

// DefaultWorkers returns the default degree of parallelism, which is the
// current GOMAXPROCS setting. It never returns less than 1.
func DefaultWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 0 {
		return n
	}
	return 1
}

// Options configures a parallel loop.
type Options struct {
	// Workers is the number of concurrent workers. Zero or negative means
	// DefaultWorkers().
	Workers int
	// Grain is the minimum number of iterations handed to a worker at a
	// time under dynamic scheduling. Zero means an automatic grain of
	// roughly n/(8*workers), clamped to [1, 8192].
	Grain int
	// Static selects static (blocked) scheduling: the index space is cut
	// into exactly Workers contiguous blocks. Dynamic scheduling (the
	// default) hands out Grain-sized chunks from an atomic cursor, which
	// balances skewed workloads the way OpenMP schedule(dynamic) does.
	Static bool
	// Context, when non-nil, makes the loop cancellable: workers check it
	// between grains and stop claiming work once it is done. A grain
	// already handed to the body still runs to completion, so
	// cancellation latency is bounded by one grain. Under static
	// scheduling blocks are subdivided into grains to preserve that
	// bound. The loop still returns normally; callers that need to
	// distinguish a cancelled partial result check Context.Err().
	Context context.Context
}

// cancelled reports whether the loop's context (if any) is done.
func (o Options) cancelled() bool {
	return o.Context != nil && o.Context.Err() != nil
}

func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = DefaultWorkers()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (o Options) grain(n, workers int) int {
	g := o.Grain
	if g <= 0 {
		g = n / (8 * workers)
		if g < 1 {
			g = 1
		}
		if g > 8192 {
			g = 8192
		}
	}
	return g
}

// For runs body over the half-open index range [0, n) using the default
// options. body receives a contiguous sub-range [lo, hi) and must be safe to
// call concurrently with other sub-ranges.
func For(n int, body func(lo, hi int)) {
	ForOpt(n, Options{}, body)
}

// ForWorkers runs body over [0, n) with an explicit worker count. It is the
// primitive used by the strong-scaling experiment (Figure 12).
func ForWorkers(n, workers int, body func(lo, hi int)) {
	ForOpt(n, Options{Workers: workers}, body)
}

// ForOpt runs body over the half-open index range [0, n) with the given
// options. It returns once every index has been processed — or, when
// opt.Context is cancelled, as soon as in-flight grains finish. A
// single-worker loop degenerates to a direct call with no goroutines.
func ForOpt(n int, opt Options, body func(lo, hi int)) {
	if n <= 0 || opt.cancelled() {
		return
	}
	workers := opt.workers(n)
	if workers == 1 {
		defer recordScan(n, nil)
		if opt.Context == nil {
			body(0, n)
			return
		}
		grain := opt.grain(n, workers)
		for lo := 0; lo < n && !opt.cancelled(); lo += grain {
			hi := lo + grain
			if hi > n {
				hi = n
			}
			body(lo, hi)
		}
		return
	}
	if opt.Static {
		defer recordScan(n, nil)
		grain := 0
		if opt.Context != nil {
			grain = opt.grain(n, workers)
		}
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			lo := w * n / workers
			hi := (w + 1) * n / workers
			go func(lo, hi int) {
				defer wg.Done()
				if lo >= hi {
					return
				}
				if grain == 0 {
					body(lo, hi)
					return
				}
				// Cancellable: walk the block one grain at a time so a
				// cancelled context stops the worker promptly.
				for ; lo < hi && !opt.cancelled(); lo += grain {
					end := lo + grain
					if end > hi {
						end = hi
					}
					body(lo, end)
				}
			}(lo, hi)
		}
		wg.Wait()
		return
	}
	grain := opt.grain(n, workers)
	cursor := newCursor()
	perWorker := make([]int64, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for !opt.cancelled() {
				lo, hi := cursor.next(grain, n)
				if lo >= hi {
					return
				}
				perWorker[w]++
				body(lo, hi)
			}
		}(w)
	}
	wg.Wait()
	recordScan(n, perWorker)
}

// ForEachWorker runs body once per worker, passing the worker id and the
// total worker count. Workers partition work themselves (e.g. over shards).
func ForEachWorker(workers int, body func(worker, workers int)) {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers == 1 {
		body(0, 1)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			body(w, workers)
		}(w)
	}
	wg.Wait()
}
