// Package parallel provides the data-parallel runtime used by the query
// engine: chunked parallel-for loops with static or dynamic scheduling,
// map-reduce helpers, and padded sharded accumulators.
//
// It plays the role OpenMP plays in the original C++ system: flat
// data-parallel iteration over row ranges with per-worker partial results
// that are merged at the end. All primitives are allocation-conscious and
// safe for repeated use on hot paths.
package parallel

import (
	"context"
	"runtime"
	"sync"
)

// minGrain is the floor of the automatic grain: chunks below it would pay
// more in cursor traffic and task accounting than the loop body earns.
const minGrain = 64

// maxGrain caps the automatic grain so even enormous scans stay responsive
// to cancellation and steal requests.
const maxGrain = 8192

// DefaultWorkers returns the default degree of parallelism, which is the
// current GOMAXPROCS setting. It never returns less than 1.
func DefaultWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 0 {
		return n
	}
	return 1
}

// Options configures a parallel loop.
type Options struct {
	// Workers is the number of concurrent workers. Zero or negative means
	// DefaultWorkers().
	Workers int
	// Grain is the minimum number of iterations handed to a worker at a
	// time under dynamic scheduling. Zero means an automatic grain of
	// roughly n/(4*workers) clamped to [64, 8192] — and never more than
	// the ideal per-worker share, so small inputs still fan out to every
	// worker instead of serializing behind one oversized chunk.
	Grain int
	// Static selects static (blocked) scheduling: the index space is cut
	// into exactly Workers contiguous blocks. Dynamic scheduling (the
	// default) hands out Grain-sized chunks from an atomic cursor, which
	// balances skewed workloads the way OpenMP schedule(dynamic) does.
	Static bool
	// Context, when non-nil, makes the loop cancellable: workers check it
	// between grains and stop claiming work once it is done. A grain
	// already handed to the body still runs to completion, so
	// cancellation latency is bounded by one grain. Under static
	// scheduling blocks are subdivided into grains to preserve that
	// bound. The loop still returns normally; callers that need to
	// distinguish a cancelled partial result check Context.Err().
	Context context.Context
	// Worker, when non-nil, binds the loop to the pool worker whose
	// goroutine is making the call (as handed to FanOut jobs). The loop
	// advertises its subtasks on that worker's own deque — shard
	// affinity: the spawner keeps draining them LIFO while idle peers
	// steal — and accumulator helpers reuse that worker's freelists. It
	// must only ever name the worker currently executing the caller.
	Worker *Worker
	// Pool overrides the process-default work-stealing pool. Tests use
	// private pools to exercise multi-worker interleavings; production
	// code leaves it nil and shares Default().
	Pool *Pool
}

// cancelled reports whether the loop's context (if any) is done.
func (o Options) cancelled() bool {
	return o.Context != nil && o.Context.Err() != nil
}

func (o Options) workers(n int) int {
	w := o.Workers
	if w <= 0 {
		w = DefaultWorkers()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

func (o Options) grain(n, workers int) int {
	g := o.Grain
	if g <= 0 {
		g = n / (4 * workers)
		if g < minGrain {
			g = minGrain
		}
		if g > maxGrain {
			g = maxGrain
		}
		// A small input must still fan out: never hand one worker more
		// than the ideal equal share, or a shard with rows < grain runs
		// as a single task no matter how many workers sit idle.
		if per := (n + workers - 1) / workers; g > per {
			g = per
		}
		if g < 1 {
			g = 1
		}
	}
	return g
}

// For runs body over the half-open index range [0, n) using the default
// options. body receives a contiguous sub-range [lo, hi) and must be safe to
// call concurrently with other sub-ranges.
func For(n int, body func(lo, hi int)) {
	ForOpt(n, Options{}, body)
}

// ForWorkers runs body over [0, n) with an explicit worker count. It is the
// primitive used by the strong-scaling experiment (Figure 12).
func ForWorkers(n, workers int, body func(lo, hi int)) {
	ForOpt(n, Options{Workers: workers}, body)
}

// ForOpt runs body over the half-open index range [0, n) with the given
// options. It returns once every index has been processed — or, when
// opt.Context is cancelled, as soon as in-flight grains finish. A
// single-worker loop degenerates to a direct call with no goroutines.
func ForOpt(n int, opt Options, body func(lo, hi int)) {
	if n <= 0 || opt.cancelled() {
		return
	}
	workers := opt.workers(n)
	if workers == 1 {
		defer recordScan(n, nil)
		if opt.Context == nil {
			body(0, n)
			return
		}
		grain := opt.grain(n, workers)
		for lo := 0; lo < n && !opt.cancelled(); lo += grain {
			hi := lo + grain
			if hi > n {
				hi = n
			}
			body(lo, hi)
		}
		return
	}
	if opt.Static {
		defer recordScan(n, nil)
		grain := 0
		if opt.Context != nil {
			grain = opt.grain(n, workers)
		}
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			lo := w * n / workers
			hi := (w + 1) * n / workers
			go func(lo, hi int) {
				defer wg.Done()
				if lo >= hi {
					return
				}
				if grain == 0 {
					body(lo, hi)
					return
				}
				// Cancellable: walk the block one grain at a time so a
				// cancelled context stops the worker promptly.
				for ; lo < hi && !opt.cancelled(); lo += grain {
					end := lo + grain
					if end > hi {
						end = hi
					}
					body(lo, end)
				}
			}(lo, hi)
		}
		wg.Wait()
		return
	}
	// Dynamic scheduling on the work-stealing pool: the loop becomes one
	// scope of `workers` runners draining a shared grain cursor. The
	// calling goroutine joins (it executes runners itself), idle pool
	// workers pick up the advertisements; a runner claimed after the
	// cursor drains is a no-op.
	grain := opt.grain(n, workers)
	cursor := newCursor()
	perRunner := make([]int64, workers)
	p := opt.pool()
	s := p.newScope(workers, func(_ *Worker, r int) {
		for !opt.cancelled() {
			lo, hi := cursor.next(grain, n)
			if lo >= hi {
				return
			}
			perRunner[r]++
			body(lo, hi)
		}
	})
	p.advertise(s, opt.Worker, workers-1)
	s.join(opt.Worker)
	recordScan(n, perRunner)
}

// ForEachWorker runs body once per worker, passing the worker id and the
// total worker count. Workers partition work themselves (e.g. over shards).
func ForEachWorker(workers int, body func(worker, workers int)) {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers == 1 {
		body(0, 1)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			body(w, workers)
		}(w)
	}
	wg.Wait()
}
