package ingest

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/retry"
)

func entryFor(path string, data []byte) gdelt.MasterEntry {
	return gdelt.MasterEntry{Size: int64(len(data)), Checksum: gdelt.Checksum32(data), Path: path}
}

func TestDirSource(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "c.export.csv"), []byte("hello\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := Dir(dir)
	data, err := src.ReadChunk(context.Background(), "c.export.csv")
	if err != nil || string(data) != "hello\n" {
		t.Fatalf("data %q err %v", data, err)
	}
	if _, err := src.ReadChunk(context.Background(), "absent.csv"); !IsNotExist(err) {
		t.Fatalf("want not-exist, got %v", err)
	}
	// A master entry pointing at a directory is a permanent read failure,
	// not a crash.
	if err := os.Mkdir(filepath.Join(dir, "weird.export.csv"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := src.ReadChunk(context.Background(), "weird.export.csv"); err == nil {
		t.Fatal("reading a directory should fail")
	}
}

// flaky fails reads with a transient error until the remaining counter
// drains, then delegates to the wrapped map.
type flaky struct {
	remaining int
	chunks    map[string][]byte
}

func (f *flaky) ReadChunk(ctx context.Context, path string) ([]byte, error) {
	if f.remaining > 0 {
		f.remaining--
		return nil, retry.Transientf("flaky: %s", path)
	}
	return Mem(f.chunks).ReadChunk(ctx, path)
}

func instantPolicy(attempts int) retry.Policy {
	return retry.Policy{MaxAttempts: attempts,
		Sleep: func(ctx context.Context, d time.Duration) error { return ctx.Err() }}
}

func TestReaderRetriesTransient(t *testing.T) {
	data := []byte("r1\nr2\n")
	src := &flaky{remaining: 2, chunks: map[string][]byte{"x.mentions.csv": data}}
	r := &Reader{Src: src, Retry: instantPolicy(4)}
	got, err := r.Read(context.Background(), entryFor("x.mentions.csv", data))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(data) {
		t.Fatalf("data %q", got)
	}
}

func TestReaderBudgetExhaustion(t *testing.T) {
	src := &flaky{remaining: 10, chunks: map[string][]byte{}}
	r := &Reader{Src: src, Retry: instantPolicy(3)}
	_, err := r.Read(context.Background(), entryFor("x.mentions.csv", nil))
	if !errors.Is(err, retry.ErrBudgetExhausted) {
		t.Fatalf("err %v", err)
	}
}

func TestReaderChecksumMismatchKeepsData(t *testing.T) {
	data := []byte("r1\nr2\n")
	entry := entryFor("x.mentions.csv", data)
	// Serve different bytes than the master list promises.
	r := &Reader{Src: Mem(map[string][]byte{"x.mentions.csv": []byte("r1\n")}), Retry: instantPolicy(1)}
	got, err := r.Read(context.Background(), entry)
	var ce *ChecksumError
	if !errors.As(err, &ce) {
		t.Fatalf("want ChecksumError, got %v", err)
	}
	if string(got) != "r1\n" {
		t.Fatalf("mismatched data must still be returned, got %q", got)
	}
	if ce.WantSize != entry.Size || ce.GotSize != 3 {
		t.Fatalf("sizes %+v", ce)
	}
}

func TestReaderPermanentMissing(t *testing.T) {
	r := &Reader{Src: Mem(nil), Retry: instantPolicy(5)}
	_, err := r.Read(context.Background(), entryFor("gone.export.csv", nil))
	if !IsNotExist(err) {
		t.Fatalf("err %v", err)
	}
}

func TestReaderContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewReader(Mem(map[string][]byte{"x.export.csv": nil}))
	if _, err := r.Read(ctx, entryFor("x.export.csv", nil)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v", err)
	}
}
