// Package ingest abstracts how raw GDELT chunk files reach the pipeline
// and layers fault handling on top: a Source yields chunk bytes by path, a
// Reader wraps a Source with the retry policy and master-list verification
// shared by the batch converter and the stream monitor. Fault injection
// (internal/faults) and the real filesystem plug in behind the same
// interface, so every failure mode of the live 15-minute feed is
// exercisable in tests.
package ingest

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/retry"
)

// Source yields the bytes of one chunk file. Implementations must be safe
// for concurrent use. Transient failures (chunk not yet published, I/O
// hiccup) are reported with retry.Transient; anything else is permanent.
type Source interface {
	ReadChunk(ctx context.Context, path string) ([]byte, error)
}

// dirSource reads chunks from a dataset directory on the real filesystem.
type dirSource struct{ dir string }

// Dir returns a Source reading chunk files under the dataset directory.
func Dir(dir string) Source { return dirSource{dir: dir} }

func (s dirSource) ReadChunk(ctx context.Context, path string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(s.dir, path))
	if err != nil {
		return nil, err
	}
	return data, nil
}

// memSource serves chunks from a map, for tests and in-process replays.
type memSource struct{ chunks map[string][]byte }

// Mem returns a Source serving the given path → bytes map. Absent paths
// report fs.ErrNotExist.
func Mem(chunks map[string][]byte) Source { return memSource{chunks: chunks} }

func (s memSource) ReadChunk(ctx context.Context, path string) ([]byte, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	data, ok := s.chunks[path]
	if !ok {
		return nil, fmt.Errorf("ingest: %s: %w", path, fs.ErrNotExist)
	}
	return data, nil
}

// ChecksumError reports a chunk whose bytes do not match the master-list
// size or checksum. The partially usable data is carried along: the paper's
// tool records the defect and parses what it got.
type ChecksumError struct {
	Path string
	// WantSize/GotSize and WantSum/GotSum describe the mismatch.
	WantSize, GotSize int64
	WantSum, GotSum   string
}

func (e *ChecksumError) Error() string {
	return fmt.Sprintf("ingest: %s: size %d/%d checksum %s/%s", e.Path, e.GotSize, e.WantSize, e.GotSum, e.WantSum)
}

// Reader is the resilient chunk reader: it drives a Source through a retry
// policy and verifies each chunk against its master-list entry.
type Reader struct {
	Src   Source
	Retry retry.Policy
}

// NewReader returns a Reader over src with the default retry policy.
func NewReader(src Source) *Reader { return &Reader{Src: src, Retry: retry.DefaultPolicy()} }

// Read fetches the chunk named by entry, retrying transient failures. On
// success it verifies size and checksum; a mismatch returns the data
// together with a *ChecksumError so the caller can both record the defect
// and parse the bytes. Permanent read failures and exhausted retry budgets
// return a nil slice and the underlying error.
func (r *Reader) Read(ctx context.Context, entry gdelt.MasterEntry) ([]byte, error) {
	var data []byte
	err := r.Retry.Do(ctx, func() error {
		var err error
		data, err = r.Src.ReadChunk(ctx, entry.Path)
		return err
	})
	if err != nil {
		return nil, err
	}
	if int64(len(data)) != entry.Size || gdelt.Checksum32(data) != entry.Checksum {
		return data, &ChecksumError{
			Path:     entry.Path,
			WantSize: entry.Size, GotSize: int64(len(data)),
			WantSum: entry.Checksum, GotSum: gdelt.Checksum32(data),
		}
	}
	return data, nil
}

// IsNotExist reports whether err means the chunk file is permanently
// absent — the Table II missing-archive defect.
func IsNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }
