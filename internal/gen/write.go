package gen

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"gdeltmine/internal/gdelt"
)

// WriteResult summarizes a raw dataset written to disk.
type WriteResult struct {
	// Dir is the dataset directory.
	Dir string
	// MasterPath is the master file list path.
	MasterPath string
	// Chunks is the number of file-pair chunks covered by the master list.
	Chunks int
	// FilesPerChunk is 2 (export + mentions) or 3 when GKG is enabled.
	FilesPerChunk int
	// FilesWritten counts chunk files actually written.
	FilesWritten int
	// MissingFiles lists chunk files listed in the master but deliberately
	// not written (the Table II missing-archive defect).
	MissingFiles []string
	// MalformedLines is the number of injected malformed master lines.
	MalformedLines int
	// Bytes is the total size of written chunk files.
	Bytes int64
}

// MasterFileName is the name of the master file list within a dataset
// directory.
const MasterFileName = "masterfilelist.txt"

// InfoFileName is the name of the dataset metadata sidecar: two lines,
// "start <YYYYMMDDHHMMSS>" and "intervals <count>". Real GDELT has no such
// file — the converter falls back to inferring the span from the master
// list when it is absent — but carrying the exact span avoids padding the
// archive out to the last chunk boundary.
const InfoFileName = "dataset.info"

// WriteRaw writes the corpus as a raw GDELT dataset under dir: one
// Events/Mentions file pair per IntervalsPerFile capture intervals, plus the
// master file list. The configured defects are injected: malformed master
// lines, and master entries whose files are withheld.
func WriteRaw(c *Corpus, dir string) (*WriteResult, error) {
	cfg := c.World.Cfg
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("gen: creating dataset dir: %w", err)
	}
	res := &WriteResult{Dir: dir, MasterPath: filepath.Join(dir, MasterFileName)}

	totalIntervals := c.World.Days() * gdelt.IntervalsPerDay
	chunkIntervals := cfg.IntervalsPerFile
	numChunks := (totalIntervals + chunkIntervals - 1) / chunkIntervals
	res.Chunks = numChunks
	res.FilesPerChunk = 2
	if cfg.GKG {
		res.FilesPerChunk = 3
	}

	// Events are placed in the chunk of their first mention (their
	// DateAdded), mirroring how GDELT publishes an event when first seen.
	evOrder := make([]int32, len(c.Events))
	for i := range evOrder {
		evOrder[i] = int32(i)
	}
	sort.Slice(evOrder, func(a, b int) bool {
		return c.Events[evOrder[a]].FirstMention < c.Events[evOrder[b]].FirstMention
	})

	// Choose which master-listed files to withhold.
	missing := pickMissingFiles(cfg, numChunks)

	ml := &gdelt.MasterList{}
	var evPos, mnPos int
	var rowBuf []byte
	for chunk := 0; chunk < numChunks; chunk++ {
		chunkStart := int32(chunk * chunkIntervals)
		chunkEnd := int32((chunk + 1) * chunkIntervals) // exclusive
		ts := c.IntervalTimestamp(chunkStart)

		// Collect event rows for this chunk.
		var evData []byte
		for evPos < len(evOrder) && c.Events[evOrder[evPos]].FirstMention < chunkEnd {
			rowBuf = rowBuf[:0]
			rec := c.EventRecord(int(evOrder[evPos]))
			rowBuf = gdelt.AppendEventRow(rowBuf, &rec)
			evData = append(evData, rowBuf...)
			evData = append(evData, '\n')
			evPos++
		}
		var mnData, gkgData []byte
		mnStart := mnPos
		for mnPos < len(c.Mentions) && c.Mentions[mnPos].Interval < chunkEnd {
			rowBuf = rowBuf[:0]
			rec := c.MentionRecord(mnPos)
			rowBuf = gdelt.AppendMentionRow(rowBuf, &rec)
			mnData = append(mnData, rowBuf...)
			mnData = append(mnData, '\n')
			mnPos++
		}
		parts := []struct {
			kind string
			data []byte
		}{{"export", evData}, {"mentions", mnData}}
		if cfg.GKG {
			for j := mnStart; j < mnPos; j++ {
				rowBuf = rowBuf[:0]
				rec := c.GKGRecord(j)
				rowBuf = gdelt.AppendGKGRow(rowBuf, &rec)
				gkgData = append(gkgData, rowBuf...)
				gkgData = append(gkgData, '\n')
			}
			parts = append(parts, struct {
				kind string
				data []byte
			}{"gkg", gkgData})
		}

		for _, part := range parts {
			name := fmt.Sprintf("%s.%s.csv", ts, part.kind)
			ml.Entries = append(ml.Entries, gdelt.MasterEntry{
				Size:     int64(len(part.data)),
				Checksum: gdelt.Checksum32(part.data),
				Path:     name,
			})
			if missing[name] {
				res.MissingFiles = append(res.MissingFiles, name)
				continue
			}
			if err := os.WriteFile(filepath.Join(dir, name), part.data, 0o644); err != nil {
				return nil, fmt.Errorf("gen: writing chunk %s: %w", name, err)
			}
			res.FilesWritten++
			res.Bytes += int64(len(part.data))
		}
	}

	// Malformed master lines, interleaved deterministically.
	for i := 0; i < cfg.DefectMalformedMaster; i++ {
		ml.Malformed = append(ml.Malformed, fmt.Sprintf("corrupt entry %d without proper fields", i))
	}
	res.MalformedLines = len(ml.Malformed)

	info := fmt.Sprintf("start %s\nintervals %d\n", gdelt.Timestamp(cfg.Start), totalIntervals)
	if err := os.WriteFile(filepath.Join(dir, InfoFileName), []byte(info), 0o644); err != nil {
		return nil, fmt.Errorf("gen: writing dataset info: %w", err)
	}

	f, err := os.Create(res.MasterPath)
	if err != nil {
		return nil, fmt.Errorf("gen: creating master list: %w", err)
	}
	w := bufio.NewWriter(f)
	if err := gdelt.WriteMasterList(w, ml); err != nil {
		f.Close()
		return nil, fmt.Errorf("gen: writing master list: %w", err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return res, nil
}

// pickMissingFiles chooses the chunk files to withhold, spread over the
// archive, alternating between export and mentions files.
func pickMissingFiles(cfg Config, numChunks int) map[string]bool {
	missing := make(map[string]bool, cfg.DefectMissingArchives)
	if cfg.DefectMissingArchives == 0 || numChunks == 0 {
		return missing
	}
	rng := rand.New(rand.NewSource(subSeed(cfg.Seed, 0xF11E)))
	chunkIntervals := cfg.IntervalsPerFile
	start := gdelt.Timestamp(cfg.Start).IntervalIndex()
	for len(missing) < cfg.DefectMissingArchives {
		chunk := rng.Intn(numChunks)
		ts := gdelt.IntervalStart(start + int64(chunk*chunkIntervals))
		kind := "export"
		if rng.Intn(2) == 0 {
			kind = "mentions"
		}
		missing[fmt.Sprintf("%s.%s.csv", ts, kind)] = true
	}
	return missing
}
