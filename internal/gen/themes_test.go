package gen

import (
	"strings"
	"testing"
)

func TestThemeVocabularyConsistent(t *testing.T) {
	if NumThemes() != len(themeVocab) {
		t.Fatal("NumThemes mismatch")
	}
	seen := map[string]bool{}
	violent := 0
	for i := 0; i < NumThemes(); i++ {
		name := ThemeName(i)
		if name == "" || seen[name] {
			t.Fatalf("theme %d invalid or duplicate: %q", i, name)
		}
		seen[name] = true
		if themeVocab[i].Violent {
			violent++
		}
	}
	if violent < 4 {
		t.Fatalf("only %d violent themes", violent)
	}
}

func TestAnnotationsWithinBounds(t *testing.T) {
	c := testCorpus(t)
	for i := range c.Events {
		a := &c.Events[i].Notes
		if a.NumThemes < 1 || int(a.NumThemes) > len(a.Themes) {
			t.Fatalf("event %d theme count %d", i, a.NumThemes)
		}
		for k := uint8(0); k < a.NumThemes; k++ {
			if int(a.Themes[k]) >= NumThemes() {
				t.Fatalf("event %d theme id out of range", i)
			}
		}
		if int(a.NumPersons) > len(a.Persons) || int(a.NumOrgs) > len(a.Orgs) {
			t.Fatalf("event %d entity counts out of range", i)
		}
		// Themes within an event are distinct.
		seen := map[uint8]bool{}
		for k := uint8(0); k < a.NumThemes; k++ {
			if seen[a.Themes[k]] {
				t.Fatalf("event %d duplicate theme", i)
			}
			seen[a.Themes[k]] = true
		}
	}
}

func TestHeadlineEventsCarryViolentThemes(t *testing.T) {
	c := testCorpus(t)
	violentName := map[string]bool{}
	for _, tv := range themeVocab {
		if tv.Violent {
			violentName[tv.Name] = true
		}
	}
	headlines, withViolent := 0, 0
	for i := range c.Events {
		if !c.Events[i].Headline {
			continue
		}
		headlines++
		a := &c.Events[i].Notes
		for k := uint8(0); k < a.NumThemes; k++ {
			if violentName[ThemeName(int(a.Themes[k]))] {
				withViolent++
				break
			}
		}
	}
	if headlines == 0 {
		t.Fatal("no headline events")
	}
	// Headline themes draw from the violent vocabulary first, so nearly
	// every headline event carries one.
	if withViolent < headlines*9/10 {
		t.Fatalf("%d of %d headline events carry violent themes", withViolent, headlines)
	}
}

func TestGKGRecordMaterialization(t *testing.T) {
	c := testCorpus(t)
	rec := c.GKGRecord(0)
	if rec.RecordID == "" || !rec.Date.Valid() || rec.SourceName == "" {
		t.Fatalf("record %+v", rec)
	}
	if len(rec.Themes) == 0 {
		t.Fatal("record has no themes")
	}
	if !strings.HasPrefix(rec.DocID, "https://") {
		t.Fatalf("doc id %q", rec.DocID)
	}
	// Same mention materializes identically (determinism).
	rec2 := c.GKGRecord(0)
	if rec.RecordID != rec2.RecordID || len(rec.Themes) != len(rec2.Themes) {
		t.Fatal("GKG materialization not deterministic")
	}
}

func TestTranslationFollowsLanguage(t *testing.T) {
	c := testCorpus(t)
	// Find one UK-source mention and one Italian-source mention.
	var ukChecked, itChecked bool
	for j := range c.Mentions {
		src := &c.World.Sources[c.Mentions[j].Source]
		name := src.Name
		rec := c.GKGRecord(j)
		if strings.HasSuffix(name, ".co.uk") {
			if rec.Translated {
				t.Fatalf("UK source %s marked translated", name)
			}
			ukChecked = true
		}
		if strings.HasSuffix(name, ".it") {
			if !rec.Translated {
				t.Fatalf("Italian source %s not marked translated", name)
			}
			itChecked = true
		}
		if ukChecked && itChecked {
			break
		}
	}
	if !ukChecked || !itChecked {
		t.Skip("corpus lacks one of the probe languages")
	}
}
