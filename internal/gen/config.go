// Package gen implements the synthetic GDELT world generator: a
// deterministic model of the global news landscape that emits data in the
// exact GDELT 2.0 raw format, calibrated to reproduce the statistical
// structure the paper's experiments measure (power-law event popularity, a
// co-owned top-publisher media group, country cross-reporting structure,
// publishing-delay mixtures, and the 2018-19 temporal trends).
//
// The real study downloaded 1.09 billion articles over five years; the
// generator is the documented substitution for that corpus (see DESIGN.md).
// Everything downstream of the generator consumes only GDELT-format bytes or
// iterators of gdelt.Event / gdelt.Mention records, so it cannot tell the
// difference.
package gen

import "gdeltmine/internal/gdelt"

// SpeedClass classifies a news source's publishing speed, the three groups
// Section VI-E identifies (plus the archive outliers with year-scale
// minimum delays).
type SpeedClass uint8

const (
	// SpeedFast sources typically report in under two hours.
	SpeedFast SpeedClass = iota
	// SpeedAverage sources follow the 24-hour news cycle with a median
	// delay around 4-5 hours.
	SpeedAverage
	// SpeedSlow sources report topics that are days to months old.
	SpeedSlow
	// SpeedArchive sources republish year-old material; they form the
	// minimum-delay outlier group beyond 30000 intervals in Figure 9.
	SpeedArchive
	numSpeedClasses
)

// String names the speed class.
func (s SpeedClass) String() string {
	switch s {
	case SpeedFast:
		return "fast"
	case SpeedAverage:
		return "average"
	case SpeedSlow:
		return "slow"
	case SpeedArchive:
		return "archive"
	}
	return "unknown"
}

// Config parameterizes a synthetic corpus. The zero value is not usable;
// start from one of the presets.
type Config struct {
	// Seed drives all randomness; equal configs generate identical corpora.
	Seed int64
	// Start and End bound the archive (dates, inclusive). Defaults mirror
	// the paper: 18 Feb 2015 to 31 Dec 2019.
	Start, End gdelt.Timestamp
	// Sources is the number of news sources in the world.
	Sources int
	// EventsPerDay is the base Poisson arrival rate of world events.
	EventsPerDay float64
	// MediaGroupSize is the size of the co-owned regional media group that
	// dominates the top publishers (the Newsquest analogue).
	MediaGroupSize int
	// HeadlineEvents is the number of mass-coverage events (the Orlando
	// analogues of Table III) injected over the archive span.
	HeadlineEvents int
	// UntaggedFraction is the fraction of events without geotagging.
	UntaggedFraction float64
	// PopularityAlpha is the power-law exponent of articles-per-event.
	PopularityAlpha float64
	// Defect injection counts (Table II ground truth).
	DefectMalformedMaster  int
	DefectMissingArchives  int
	DefectMissingSourceURL int
	DefectFutureEventDate  int
	// IntervalsPerFile coarsens raw file granularity: real GDELT writes one
	// file pair per 15-minute interval; the default of 96 writes one pair
	// per day to keep file counts laptop-friendly. Mention timestamps keep
	// full 15-minute resolution regardless.
	IntervalsPerFile int
	// GKG additionally writes a Global Knowledge Graph file per chunk (one
	// annotated record per article) and ingests it on conversion.
	GKG bool
}

// Small returns a test-sized corpus configuration covering the full
// 2015-2019 span with roughly 60k articles. It generates in well under a
// second and is the workload for unit and integration tests.
func Small() Config {
	return Config{
		Seed:                   42,
		Start:                  20150218000000,
		End:                    20191231000000,
		Sources:                120,
		EventsPerDay:           10,
		MediaGroupSize:         8,
		HeadlineEvents:         8,
		UntaggedFraction:       0.15,
		PopularityAlpha:        2.2,
		DefectMalformedMaster:  5,
		DefectMissingArchives:  2,
		DefectMissingSourceURL: 1,
		DefectFutureEventDate:  2,
		IntervalsPerFile:       96 * 30,
		GKG:                    true,
	}
}

// Bench returns the corpus configuration used by the testing.B benchmarks:
// roughly 440k articles from 400 sources.
func Bench() Config {
	c := Small()
	c.Seed = 43
	c.Sources = 400
	c.EventsPerDay = 80
	c.MediaGroupSize = 10
	c.IntervalsPerFile = 96 * 7
	return c
}

// Standard returns the full experiment configuration used by cmd/gdeltbench:
// 2000 sources and roughly 4 million articles, the scaled-down analogue of
// the paper's 21k sources and 1.09B articles. Defect counts match Table II.
func Standard() Config {
	c := Small()
	c.Seed = 44
	c.Sources = 2000
	c.EventsPerDay = 700
	c.MediaGroupSize = 12
	c.HeadlineEvents = 8
	c.DefectMalformedMaster = 53
	c.DefectMissingArchives = 8
	c.DefectMissingSourceURL = 1
	c.DefectFutureEventDate = 4
	c.IntervalsPerFile = 96
	return c
}

// Days returns the number of calendar days covered by the configuration,
// inclusive of both endpoints.
func (c Config) Days() int {
	start := c.Start.Time()
	end := c.End.Time()
	return int(end.Sub(start).Hours()/24) + 1
}

// Quarters returns the number of calendar quarters covered.
func (c Config) Quarters() int {
	return quarterIndexOf(c.End) - quarterIndexOf(c.Start) + 1
}

// quarterIndexOf maps a timestamp to a quarter index relative to the start
// of the archive's first calendar year.
func quarterIndexOf(ts gdelt.Timestamp) int {
	return ts.Year()*4 + (ts.Month()-1)/3
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Sources < 20:
		return errConfig("need at least 20 sources")
	case c.MediaGroupSize < 2 || c.MediaGroupSize > c.Sources/4:
		return errConfig("media group must have 2..Sources/4 members")
	case c.End <= c.Start:
		return errConfig("End must be after Start")
	case c.EventsPerDay <= 0:
		return errConfig("EventsPerDay must be positive")
	case c.PopularityAlpha <= 2:
		return errConfig("PopularityAlpha must exceed 2 for a finite mean")
	case c.UntaggedFraction < 0 || c.UntaggedFraction > 0.9:
		return errConfig("UntaggedFraction must be in [0, 0.9]")
	case c.IntervalsPerFile < 1:
		return errConfig("IntervalsPerFile must be at least 1")
	case !c.Start.Valid() || !c.End.Valid():
		return errConfig("Start/End must be valid timestamps")
	}
	return nil
}

type errConfig string

func (e errConfig) Error() string { return "gen: invalid config: " + string(e) }
