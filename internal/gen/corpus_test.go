package gen

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gdeltmine/internal/gdelt"
)

// smallCorpus caches the Small() corpus across tests in this package.
var smallCorpus *Corpus

func testCorpus(t testing.TB) *Corpus {
	t.Helper()
	if smallCorpus == nil {
		c, err := Generate(Small())
		if err != nil {
			t.Fatal(err)
		}
		smallCorpus = c
	}
	return smallCorpus
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Small())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Small())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) || len(a.Mentions) != len(b.Mentions) {
		t.Fatalf("sizes differ: %d/%d vs %d/%d", len(a.Events), len(a.Mentions), len(b.Events), len(b.Mentions))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	for i := range a.Mentions {
		if a.Mentions[i] != b.Mentions[i] {
			t.Fatalf("mention %d differs", i)
		}
	}
}

func TestCorpusBasicShape(t *testing.T) {
	c := testCorpus(t)
	s := c.Stats()
	if s.Events < 5000 {
		t.Fatalf("too few events: %d", s.Events)
	}
	if s.Articles < 3*s.Events/2 {
		t.Fatalf("articles %d vs events %d: weighted average too low", s.Articles, s.Events)
	}
	if s.MinArticles != 1 {
		t.Fatalf("min articles per event %d want 1", s.MinArticles)
	}
	if s.WeightedAvg < 2.0 || s.WeightedAvg > 6.0 {
		t.Fatalf("weighted average articles/event %.2f not near the paper's 3.36", s.WeightedAvg)
	}
	// The headline events dominate: max articles far above the typical 1-5.
	if s.MaxArticles < 20 {
		t.Fatalf("max articles %d: headline events missing", s.MaxArticles)
	}
}

func TestMentionsSortedAndConsistent(t *testing.T) {
	c := testCorpus(t)
	last := int32(-1)
	lastInterval := int32(c.World.Days()*gdelt.IntervalsPerDay - 1)
	for i, m := range c.Mentions {
		if m.Interval < last {
			t.Fatalf("mentions not sorted at %d", i)
		}
		last = m.Interval
		if m.Interval > lastInterval {
			t.Fatalf("mention %d beyond archive end", i)
		}
		if int(m.Event) >= len(c.Events) || m.Event < 0 {
			t.Fatalf("mention %d has bad event index", i)
		}
		if int(m.Source) >= len(c.World.Sources) || m.Source < 0 {
			t.Fatalf("mention %d has bad source index", i)
		}
		if m.Interval < c.Events[m.Event].Interval {
			t.Fatalf("mention %d precedes its event", i)
		}
	}
}

func TestEventInvariants(t *testing.T) {
	c := testCorpus(t)
	seen := map[int64]bool{}
	for i := range c.Events {
		ev := &c.Events[i]
		if seen[ev.ID] {
			t.Fatalf("duplicate event id %d", ev.ID)
		}
		seen[ev.ID] = true
		if ev.NumArticles < 1 {
			t.Fatalf("event %d has %d articles", i, ev.NumArticles)
		}
		if ev.FirstMention < ev.Interval {
			t.Fatalf("event %d first mention before event", i)
		}
		if int(ev.Country) >= len(gdelt.Countries) {
			t.Fatalf("event %d country out of range", i)
		}
	}
}

func TestPowerLawEventSizes(t *testing.T) {
	c := testCorpus(t)
	// Count events per article-count; the head must decay like a power law:
	// strictly decreasing counts over the first few sizes, with size-1 or
	// size-2 events the most common.
	counts := map[int32]int{}
	for i := range c.Events {
		counts[c.Events[i].NumArticles]++
	}
	if counts[1] < counts[5] {
		t.Fatalf("size-1 events (%d) should far outnumber size-5 (%d)", counts[1], counts[5])
	}
	if counts[1]+counts[2]+counts[3] < len(c.Events)/2 {
		t.Fatal("typical event should be covered by only a few sites")
	}
}

func TestDefectInjectionCounts(t *testing.T) {
	c := testCorpus(t)
	cfg := c.World.Cfg
	var noURL, future int
	for i := range c.Events {
		if c.Events[i].NoURL {
			noURL++
		}
		if c.Events[i].FutureDay != 0 {
			future++
			// Defect definition: recorded day after first mention's day.
			firstDay := c.dayYYYYMMDD[int(c.Events[i].FirstMention)/gdelt.IntervalsPerDay]
			if c.Events[i].FutureDay <= firstDay {
				t.Fatalf("future-day defect not actually in the future: %d vs %d",
					c.Events[i].FutureDay, firstDay)
			}
		}
	}
	if noURL != cfg.DefectMissingSourceURL {
		t.Fatalf("noURL %d want %d", noURL, cfg.DefectMissingSourceURL)
	}
	if future != cfg.DefectFutureEventDate {
		t.Fatalf("future %d want %d", future, cfg.DefectFutureEventDate)
	}
}

func TestHeadlineEventsAreTop(t *testing.T) {
	c := testCorpus(t)
	// The largest event must be a headline event with coverage around 85%
	// of the sources active in its quarter.
	var maxIdx int
	for i := range c.Events {
		if c.Events[i].NumArticles > c.Events[maxIdx].NumArticles {
			maxIdx = i
		}
	}
	if !c.Events[maxIdx].Headline {
		t.Fatal("largest event is not a headline event")
	}
	q := c.World.quarterOfDay(int(c.Events[maxIdx].Interval) / gdelt.IntervalsPerDay)
	active := c.World.ActiveSources(q)
	cover := float64(c.Events[maxIdx].NumArticles) / float64(active)
	if cover < 0.6 || cover > 1.1 {
		t.Fatalf("headline coverage %.2f of active sources, want ~0.85", cover)
	}
}

func TestRecordsMaterialize(t *testing.T) {
	c := testCorpus(t)
	ev := c.EventRecord(0)
	if ev.GlobalEventID == 0 || ev.Day == 0 || !ev.DateAdded.Valid() {
		t.Fatalf("event record %+v", ev)
	}
	if ev.SourceURL == "" && !c.Events[0].NoURL {
		t.Fatal("event record missing URL")
	}
	mn := c.MentionRecord(0)
	if mn.GlobalEventID == 0 || !mn.MentionTime.Valid() || !mn.EventTime.Valid() {
		t.Fatalf("mention record %+v", mn)
	}
	if mn.SourceName == "" || !strings.HasPrefix(mn.Identifier, "https://") {
		t.Fatalf("mention identity %+v", mn)
	}
	if mn.MentionType != gdelt.MentionTypeWeb {
		t.Fatalf("mention type %d", mn.MentionType)
	}
	if d := mn.Delay(); d < 1 {
		t.Fatalf("mention delay %d", d)
	}
}

func TestDelayProfiles(t *testing.T) {
	c := testCorpus(t)
	// Collect delays by speed class of the source.
	delays := map[SpeedClass][]int64{}
	for j := range c.Mentions {
		m := &c.Mentions[j]
		d := int64(m.Interval-c.Events[m.Event].Interval) + 1
		sp := c.World.Sources[m.Source].Speed
		delays[sp] = append(delays[sp], d)
	}
	med := func(xs []int64) int64 {
		if len(xs) == 0 {
			return -1
		}
		cp := append([]int64(nil), xs...)
		// insertion-free: simple selection via sort
		for i := 1; i < len(cp); i++ {
			for j := i; j > 0 && cp[j] < cp[j-1]; j-- {
				cp[j], cp[j-1] = cp[j-1], cp[j]
			}
		}
		return cp[len(cp)/2]
	}
	if m := med(delays[SpeedAverage]); m < 8 || m > 40 {
		t.Fatalf("average-class median delay %d intervals, want ~16 (4h)", m)
	}
	if m := med(delays[SpeedFast]); m < 1 || m > 12 {
		t.Fatalf("fast-class median delay %d intervals, want <2h", m)
	}
	if len(delays[SpeedSlow]) > 0 {
		if m := med(delays[SpeedSlow]); m < 48 {
			t.Fatalf("slow-class median delay %d intervals, want days", m)
		}
	}
}

func TestYearBandExists(t *testing.T) {
	c := testCorpus(t)
	var yearBand int
	for j := range c.Mentions {
		m := &c.Mentions[j]
		d := int64(m.Interval-c.Events[m.Event].Interval) + 1
		if d > gdelt.IntervalsPerYear-2*gdelt.IntervalsPerDay {
			yearBand++
		}
		if d > gdelt.IntervalsPerYear+gdelt.IntervalsPerDay {
			t.Fatalf("delay %d beyond the one-year-plus-a-day cap", d)
		}
	}
	if yearBand == 0 {
		t.Fatal("no anniversary articles generated (Table VIII max band missing)")
	}
}

func TestTailTrendDeclines(t *testing.T) {
	c := testCorpus(t)
	// Articles with delay > 24h per year: 2019 must be clearly below 2016
	// relative to volume (Figure 11).
	slow := map[int]int{}
	total := map[int]int{}
	for j := range c.Mentions {
		m := &c.Mentions[j]
		d := int64(m.Interval-c.Events[m.Event].Interval) + 1
		year := int(c.dayYYYYMMDD[int(m.Interval)/gdelt.IntervalsPerDay] / 10000)
		total[year]++
		if d > gdelt.IntervalsPerDay {
			slow[year]++
		}
	}
	f2016 := float64(slow[2016]) / float64(total[2016])
	f2019 := float64(slow[2019]) / float64(total[2019])
	if f2019 >= f2016*0.9 {
		t.Fatalf("slow-article fraction did not decline: 2016=%.4f 2019=%.4f", f2016, f2019)
	}
}

func TestWriteRaw(t *testing.T) {
	c := testCorpus(t)
	dir := t.TempDir()
	res, err := WriteRaw(c, dir)
	if err != nil {
		t.Fatal(err)
	}
	cfg := c.World.Cfg
	if res.MalformedLines != cfg.DefectMalformedMaster {
		t.Fatalf("malformed lines %d", res.MalformedLines)
	}
	if len(res.MissingFiles) != cfg.DefectMissingArchives {
		t.Fatalf("missing files %d want %d", len(res.MissingFiles), cfg.DefectMissingArchives)
	}
	if res.FilesWritten != res.FilesPerChunk*res.Chunks-len(res.MissingFiles) {
		t.Fatalf("files written %d, chunks %d, missing %d", res.FilesWritten, res.Chunks, len(res.MissingFiles))
	}
	// Master list round-trips and matches what is on disk.
	f, err := os.Open(res.MasterPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ml, err := gdelt.ReadMasterList(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(ml.Malformed) != cfg.DefectMalformedMaster {
		t.Fatalf("master malformed %d", len(ml.Malformed))
	}
	if len(ml.Entries) != res.FilesPerChunk*res.Chunks {
		t.Fatalf("master entries %d want %d", len(ml.Entries), res.FilesPerChunk*res.Chunks)
	}
	var present, absent int
	for _, e := range ml.Entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Path))
		if err != nil {
			absent++
			continue
		}
		present++
		if int64(len(data)) != e.Size {
			t.Fatalf("entry %s size %d, file %d", e.Path, e.Size, len(data))
		}
		if gdelt.Checksum32(data) != e.Checksum {
			t.Fatalf("entry %s checksum mismatch", e.Path)
		}
	}
	if absent != cfg.DefectMissingArchives {
		t.Fatalf("absent files %d", absent)
	}
	if present != res.FilesWritten {
		t.Fatalf("present %d vs written %d", present, res.FilesWritten)
	}
}

func TestWriteRawRowsParse(t *testing.T) {
	c := testCorpus(t)
	dir := t.TempDir()
	res, err := WriteRaw(c, dir)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(res.MasterPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ml, err := gdelt.ReadMasterList(f)
	if err != nil {
		t.Fatal(err)
	}
	var events, mentions int
	for _, e := range ml.Entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Path))
		if err != nil {
			continue
		}
		for _, line := range strings.Split(string(data), "\n") {
			if line == "" {
				continue
			}
			fields := gdelt.SplitTabs([]byte(line), nil)
			switch e.Kind() {
			case "export":
				if _, err := gdelt.ParseEventFields(fields); err != nil {
					t.Fatalf("event row in %s: %v", e.Path, err)
				}
				events++
			case "mentions":
				if _, err := gdelt.ParseMentionFields(fields); err != nil {
					t.Fatalf("mention row in %s: %v", e.Path, err)
				}
				mentions++
			}
		}
	}
	if events == 0 || mentions == 0 {
		t.Fatalf("no rows parsed: %d events %d mentions", events, mentions)
	}
	// Written rows are a subset of the corpus (missing archives withheld).
	if events > len(c.Events) || mentions > len(c.Mentions) {
		t.Fatalf("more rows than corpus: %d/%d events, %d/%d mentions",
			events, len(c.Events), mentions, len(c.Mentions))
	}
}

func TestStatsWeightedAverage(t *testing.T) {
	c := testCorpus(t)
	s := c.Stats()
	var sum int64
	for i := range c.Events {
		sum += int64(c.Events[i].NumArticles)
	}
	if sum != int64(s.Articles) {
		t.Fatalf("article count mismatch: %d vs %d", sum, s.Articles)
	}
	if math.Abs(s.WeightedAvg-float64(s.Articles)/float64(s.Events)) > 1e-9 {
		t.Fatal("weighted average inconsistent")
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	bad := Small()
	bad.Sources = 0
	if _, err := Generate(bad); err == nil {
		t.Fatal("bad config should fail")
	}
}
