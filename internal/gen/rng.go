package gen

import (
	"math"
	"math/rand"
)

// splitmix64 advances a splitmix64 state and returns the next value. It is
// used to derive independent, reproducible per-day substream seeds from the
// corpus master seed, so generation order never changes results.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// subSeed derives a reproducible sub-seed from a master seed and a stream
// label (e.g. a day index).
func subSeed(master int64, stream uint64) int64 {
	s := uint64(master) ^ (stream+1)*0x9e3779b97f4a7c15
	return int64(splitmix64(&s))
}

// poisson samples a Poisson(lambda) variate. For small lambda it uses
// Knuth's product method; for large lambda the PTRS-free normal
// approximation with continuity correction, which is accurate enough for
// event arrival counts.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k := 0
		p := 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	k := int(math.Floor(lambda + math.Sqrt(lambda)*rng.NormFloat64() + 0.5))
	if k < 0 {
		return 0
	}
	return k
}

// paretoInt samples a discrete truncated power-law variate in [1, max]:
// P(X = k) ~ k^(-alpha), via inverse transform on the continuous Pareto
// followed by flooring and rejection of values beyond max. alpha must
// exceed 1.
func paretoInt(rng *rand.Rand, alpha float64, max int) int {
	if max <= 1 {
		return 1
	}
	for {
		u := rng.Float64()
		x := math.Pow(1-u, -1/(alpha-1))
		if x < float64(max)+1 {
			k := int(x)
			if k < 1 {
				k = 1
			}
			return k
		}
		// Reject the overflow tail (rare for alpha > 2) to keep the
		// truncated distribution's shape instead of piling mass at max.
	}
}

// logNormalClamped samples exp(N(mu, sigma²)) clamped into [lo, hi]. The
// clamp concentrates overflow mass at hi, which deliberately produces the
// "news cycle cap" spikes of Figure 9 (maximum delays clustering at 24
// hours, a week, a month).
func logNormalClamped(rng *rand.Rand, mu, sigma, lo, hi float64) float64 {
	x := math.Exp(mu + sigma*rng.NormFloat64())
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// logUniform samples uniformly in log space over [lo, hi], lo > 0.
func logUniform(rng *rand.Rand, lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	return lo * math.Exp(rng.Float64()*math.Log(hi/lo))
}

// aliasTable implements Walker's alias method for O(1) weighted sampling
// from a fixed discrete distribution.
type aliasTable struct {
	prob  []float64
	alias []int32
}

// newAliasTable builds an alias table for the given non-negative weights.
// A table over all-zero or empty weights returns nil.
func newAliasTable(weights []float64) *aliasTable {
	n := len(weights)
	if n == 0 {
		return nil
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("gen: negative weight")
		}
		total += w
	}
	if total == 0 {
		return nil
	}
	t := &aliasTable{prob: make([]float64, n), alias: make([]int32, n)}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		t.prob[i] = 1
		t.alias[i] = int32(i)
	}
	for _, i := range small {
		t.prob[i] = 1
		t.alias[i] = int32(i)
	}
	return t
}

// sample draws one index from the table.
func (t *aliasTable) sample(rng *rand.Rand) int {
	i := rng.Intn(len(t.prob))
	if rng.Float64() < t.prob[i] {
		return i
	}
	return int(t.alias[i])
}
