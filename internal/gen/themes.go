package gen

import (
	"fmt"
	"math/rand"

	"gdeltmine/internal/gdelt"
)

// The GKG theme vocabulary: a compact analogue of GDELT's theme taxonomy.
// Weights set base frequency; Violent themes concentrate on headline events
// (the mass-shooting analogues of Table III).
var themeVocab = []struct {
	Name    string
	Weight  float64
	Violent bool
}{
	{"TERROR", 4, true},
	{"KILL", 5, true},
	{"ARMEDCONFLICT", 3, true},
	{"SECURITY_SERVICES", 4, true},
	{"WOUND", 3, true},
	{"CRIME_GUN", 3, true},
	{"ELECTION", 6, false},
	{"GENERAL_GOVERNMENT", 8, false},
	{"LEGISLATION", 4, false},
	{"TAX_POLICY", 3, false},
	{"ECON_STOCKMARKET", 5, false},
	{"ECON_INFLATION", 3, false},
	{"ECON_TRADE", 4, false},
	{"UNEMPLOYMENT", 2, false},
	{"ENERGY", 3, false},
	{"OIL_PRICES", 2, false},
	{"ENVIRONMENT", 4, false},
	{"CLIMATE_CHANGE", 3, false},
	{"NATURAL_DISASTER", 3, false},
	{"HEALTH_PANDEMIC", 2, false},
	{"MEDICAL", 4, false},
	{"EDUCATION", 3, false},
	{"IMMIGRATION", 3, false},
	{"REFUGEES", 2, false},
	{"PROTEST", 4, false},
	{"CORRUPTION", 3, false},
	{"MEDIA_CENSORSHIP", 1, false},
	{"INTERNET_BLACKOUT", 1, false},
	{"CYBER_ATTACK", 2, false},
	{"SCIENCE", 2, false},
	{"SPACE", 1, false},
	{"SPORTS", 6, false},
	{"ENTERTAINMENT", 5, false},
	{"RELIGION", 2, false},
	{"AGRICULTURE", 2, false},
	{"TRANSPORT", 3, false},
	{"HOUSING", 2, false},
	{"LABOR_STRIKE", 2, false},
	{"ROYALTY", 2, false},
	{"DIPLOMACY", 4, false},
}

var personFirst = []string{
	"james", "mary", "robert", "patricia", "john", "jennifer", "michael",
	"linda", "david", "elizabeth", "william", "susan", "richard", "jessica",
	"joseph", "sarah", "thomas", "karen", "carlos", "amina", "wei", "priya",
	"olga", "hiroshi", "fatima", "lars",
}

var personLast = []string{
	"smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
	"davis", "martinez", "lopez", "wilson", "anderson", "taylor", "thomas",
	"moore", "jackson", "martin", "lee", "petrov", "tanaka", "okafor",
	"sharma", "nguyen", "larsen", "rossi", "khan",
}

var orgWords = []string{
	"national", "united", "federal", "global", "central", "royal",
	"metropolitan", "international", "regional", "civic",
}

var orgNouns = []string{
	"police", "bank", "assembly", "commission", "ministry", "council",
	"agency", "institute", "federation", "authority", "exchange", "court",
}

// themeModel holds the sampled GKG world: alias tables and entity pools.
type themeModel struct {
	normal  *aliasTable // all themes by weight
	violent *aliasTable // violent themes only
	persons []string
	orgs    []string
}

func newThemeModel(seed int64) *themeModel {
	rng := rand.New(rand.NewSource(subSeed(seed, 0x6146)))
	m := &themeModel{}
	weights := make([]float64, len(themeVocab))
	vweights := make([]float64, len(themeVocab))
	for i, t := range themeVocab {
		weights[i] = t.Weight
		if t.Violent {
			vweights[i] = t.Weight
		}
	}
	m.normal = newAliasTable(weights)
	m.violent = newAliasTable(vweights)
	const nPersons, nOrgs = 400, 120
	for i := 0; i < nPersons; i++ {
		m.persons = append(m.persons, fmt.Sprintf("%s %s",
			personFirst[rng.Intn(len(personFirst))], personLast[rng.Intn(len(personLast))]))
	}
	for i := 0; i < nOrgs; i++ {
		m.orgs = append(m.orgs, fmt.Sprintf("%s %s",
			orgWords[rng.Intn(len(orgWords))], orgNouns[rng.Intn(len(orgNouns))]))
	}
	return m
}

// Annotations is the compact per-event GKG annotation set. Fixed-size
// arrays keep gen.Event comparable (determinism tests compare with ==).
type Annotations struct {
	NumThemes  uint8
	Themes     [4]uint8
	NumPersons uint8
	Persons    [3]int16
	NumOrgs    uint8
	Orgs       [2]int16
}

// sampleAnnotations draws an event's themes and entities. Headline events
// draw from the violent vocabulary, matching Table III's composition.
func (m *themeModel) sampleAnnotations(rng *rand.Rand, headline bool) Annotations {
	var a Annotations
	table := m.normal
	if headline {
		table = m.violent
	}
	a.NumThemes = uint8(1 + rng.Intn(4))
	seen := map[uint8]bool{}
	for i := uint8(0); i < a.NumThemes; i++ {
		th := uint8(table.sample(rng))
		for seen[th] {
			th = uint8(m.normal.sample(rng))
		}
		seen[th] = true
		a.Themes[i] = th
	}
	a.NumPersons = uint8(rng.Intn(4))
	for i := uint8(0); i < a.NumPersons; i++ {
		a.Persons[i] = int16(rng.Intn(len(m.persons)))
	}
	a.NumOrgs = uint8(rng.Intn(3))
	for i := uint8(0); i < a.NumOrgs; i++ {
		a.Orgs[i] = int16(rng.Intn(len(m.orgs)))
	}
	return a
}

// englishSpeaking reports whether a country's press publishes in English
// (and therefore reaches GDELT untranslated).
func englishSpeaking(country int16) bool {
	if country < 0 {
		return false
	}
	switch gdelt.Countries[country].FIPS {
	case "UK", "US", "AS", "IN", "CA", "SF", "NI", "NZ", "EI", "GH", "RP", "KE", "UG", "TZ", "ZI", "PK", "BG", "CE", "SN", "MY":
		return true
	}
	return false
}

// ThemeName returns theme vocabulary entry i.
func ThemeName(i int) string { return themeVocab[i].Name }

// NumThemes returns the theme vocabulary size.
func NumThemes() int { return len(themeVocab) }

// GKGRecord materializes the GKG row of mention j. Annotations come from
// the event; the translation flag reflects the source's country (non-anglo
// press is machine-translated, Section III's 65-language feed).
func (c *Corpus) GKGRecord(j int) gdelt.GKGRecord {
	m := &c.Mentions[j]
	ev := &c.Events[m.Event]
	src := &c.World.Sources[m.Source]
	tm := c.themes
	rec := gdelt.GKGRecord{
		RecordID:   fmt.Sprintf("%s-%d", c.IntervalTimestamp(m.Interval), j),
		Date:       c.IntervalTimestamp(m.Interval),
		SourceName: src.Name,
		DocID:      c.articleURL(m.Source, ev.ID, j),
		Tone:       m.Tone,
		Translated: !englishSpeaking(src.Country),
	}
	a := &ev.Notes
	for i := uint8(0); i < a.NumThemes; i++ {
		rec.Themes = append(rec.Themes, themeVocab[a.Themes[i]].Name)
	}
	for i := uint8(0); i < a.NumPersons; i++ {
		rec.Persons = append(rec.Persons, tm.persons[a.Persons[i]])
	}
	for i := uint8(0); i < a.NumOrgs; i++ {
		rec.Organizations = append(rec.Organizations, tm.orgs[a.Orgs[i]])
	}
	return rec
}
