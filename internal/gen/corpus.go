package gen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"gdeltmine/internal/gdelt"
)

// Event is one synthetic world event in compact corpus form.
type Event struct {
	// ID is the GlobalEventID.
	ID int64
	// Interval is the capture interval in which the event happened.
	Interval int32
	// Country indexes gdelt.Countries, or -1 for untagged events.
	Country int16
	// Headline marks mass-coverage events (Table III analogues).
	Headline bool
	// Reaction marks the follow-up companion of a headline event (the
	// "Reactions to ..." rows of Table III).
	Reaction bool
	// NoURL marks the injected missing-SourceURL defect.
	NoURL bool
	// FutureDay, when nonzero, overrides the recorded event day with a date
	// after the first article (the injected future-date defect).
	FutureDay int32
	// NumArticles is the number of mentions that survived generation.
	NumArticles int32
	// FirstMention is the capture interval of the earliest mention.
	FirstMention int32
	// FirstSource indexes the source of the earliest mention.
	FirstSource int32
	// Notes holds the event's GKG annotations (themes and entities).
	Notes Annotations
}

// Mention is one synthetic article in compact corpus form.
type Mention struct {
	// Event indexes Corpus.Events.
	Event int32
	// Source indexes World.Sources.
	Source int32
	// Interval is the capture interval in which the article was scraped.
	Interval int32
	// DocLen is the article length in characters.
	DocLen int32
	// Tone is the document tone.
	Tone float32
	// Confidence is the event-match confidence, 0..100.
	Confidence int8
}

// Corpus is a fully generated synthetic dataset in compact columnar form.
// Mentions are sorted by capture interval. Raw-file writing and direct
// store building both consume this one representation.
type Corpus struct {
	World    *World
	Events   []Event
	Mentions []Mention
	// dayYYYYMMDD caches the calendar date of each archive day.
	dayYYYYMMDD []int32
	// themes is the GKG annotation model.
	themes *themeModel
}

// Generate builds the synthetic corpus for a configuration. Generation is
// deterministic in the configuration (including the seed).
func Generate(cfg Config) (*Corpus, error) {
	w, err := NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	c := &Corpus{World: w, themes: newThemeModel(cfg.Seed)}
	c.precomputeCalendar()

	days := w.Days()
	lastInterval := int32(days*gdelt.IntervalsPerDay - 1)
	dayQuarter := make([]int, days)
	for d := 0; d < days; d++ {
		dayQuarter[d] = w.quarterOfDay(d)
	}
	activeCount := make([]int, w.Quarters())
	for q := range activeCount {
		activeCount[q] = w.ActiveSources(q)
	}

	headlineDays := headlineSchedule(cfg.HeadlineEvents, days)
	var nextID int64 = 100000

	// Scratch buffers reused across events.
	var drawn []int32
	groupSeen := make(map[int32]bool)

	for d := 0; d < days; d++ {
		rng := rand.New(rand.NewSource(subSeed(cfg.Seed, uint64(d)+0x100)))
		q := dayQuarter[d]
		rate := cfg.EventsPerDay * c.rateTrend(d)
		n := poisson(rng, rate)
		for e := 0; e < n; e++ {
			nextID++
			c.generateEvent(rng, nextID, d, q, activeCount[q], lastInterval, false, &drawn, groupSeen)
		}
		for _, hd := range headlineDays {
			if hd == d {
				nextID++
				c.generateEvent(rng, nextID, d, q, activeCount[q], lastInterval, true, &drawn, groupSeen)
				// The companion "reactions" event (Table III rows like
				// "Reactions to Orlando nightclub shooting").
				nextID++
				c.generateReactions(rng, nextID, d, q, activeCount[q], lastInterval)
			}
		}
	}

	c.finalize()
	c.injectDefects()
	return c, nil
}

// precomputeCalendar fills the day -> YYYYMMDD cache.
func (c *Corpus) precomputeCalendar() {
	days := c.World.Days()
	c.dayYYYYMMDD = make([]int32, days)
	t := c.World.Cfg.Start.Time()
	for d := 0; d < days; d++ {
		dt := t.AddDate(0, 0, d)
		c.dayYYYYMMDD[d] = int32(dt.Year()*10000 + int(dt.Month())*100 + dt.Day())
	}
}

// rateTrend is the event-arrival trend: stable through 2017, slightly lower
// in 2018 and 2019 (Figures 4 and 5 show the mild decline).
func (c *Corpus) rateTrend(day int) float64 {
	switch year := c.dayYYYYMMDD[day] / 10000; {
	case year <= 2017:
		return 1.0
	case year == 2018:
		return 0.95
	default:
		return 0.88
	}
}

// tailScale scales the slow-tail probability of publishing delays: 1.0
// through 2016, decaying to 0.35 by the end of 2019. This produces the
// declining average delay (Figure 10a) and falling count of >24h articles
// (Figure 11) while medians stay flat (Figure 10b). The decline must start
// early enough to overcome the delay-truncation ramp: year-scale delays can
// only be observed once the archive is a year old, which mechanically
// raises averages through 2016.
func (c *Corpus) tailScale(day int) float64 {
	date := c.dayYYYYMMDD[day]
	year := int(date / 10000)
	if year < 2017 {
		return 1.0
	}
	frac := float64(day-c.dayIndexOfYear(2017)) / float64(c.World.Days()-c.dayIndexOfYear(2017))
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return 1.0 - 0.65*frac
}

// dayIndexOfYear returns the day offset of 1 January of the given year,
// clamped into the archive.
func (c *Corpus) dayIndexOfYear(year int) int {
	target := int32(year * 10000)
	for d, date := range c.dayYYYYMMDD {
		if date > target {
			return d
		}
	}
	return len(c.dayYYYYMMDD) - 1
}

// headlineSchedule spreads n headline events evenly over the archive days.
func headlineSchedule(n, days int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		d := (i*2 + 1) * days / (2 * n)
		if d >= days {
			d = days - 1
		}
		out = append(out, d)
	}
	return out
}

func (c *Corpus) generateEvent(rng *rand.Rand, id int64, day, quarter, active int, lastInterval int32, headline bool, drawn *[]int32, groupSeen map[int32]bool) {
	w := c.World
	evInterval := int32(day*gdelt.IntervalsPerDay + rng.Intn(gdelt.IntervalsPerDay))
	country := int16(w.eventCountry.sample(rng))
	if int(country) == len(gdelt.Countries) {
		country = -1
	}
	if headline {
		country = int16(gdelt.CountryIndex("US"))
	}
	evIdx := int32(len(c.Events))
	c.Events = append(c.Events, Event{ID: id, Interval: evInterval, Country: country, Headline: headline,
		Notes: c.themes.sampleAnnotations(rng, headline)})

	ts := c.tailScale(day)
	emitted := 0
	if headline {
		// Mass coverage: every active source reports with probability 0.85.
		for s := range w.Sources {
			src := &w.Sources[s]
			if !src.activeAt(quarter) || rng.Float64() >= 0.85 {
				continue
			}
			if c.emitMention(rng, evIdx, int32(s), evInterval, ts, lastInterval) {
				emitted++
			}
		}
	} else {
		maxPop := active / 3
		if maxPop < 5 {
			maxPop = 5
		}
		k := paretoInt(rng, w.Cfg.PopularityAlpha, maxPop)
		*drawn = (*drawn)[:0]
		table := w.sourceByCountry[sourceTableIndex(country)]
		for a := 0; a < k; a++ {
			s := sampleActive(rng, table, w, quarter)
			if s < 0 {
				continue
			}
			*drawn = append(*drawn, s)
			if c.emitMention(rng, evIdx, s, evInterval, ts, lastInterval) {
				emitted++
			}
		}
		// Media-group cascade: when a co-owned outlet covers an anglo event,
		// sister outlets often follow (the Table IV block structure).
		if c.angloCountry(country) {
			for k := range groupSeen {
				delete(groupSeen, k)
			}
			anyGroup := false
			for _, s := range *drawn {
				if w.Sources[s].Group == 0 {
					anyGroup = true
					groupSeen[s] = true
				}
			}
			if anyGroup && rng.Float64() < 0.7 {
				joins := 0
				for _, m := range w.GroupMembers(0) {
					if joins >= 2 {
						break
					}
					if groupSeen[m] || !w.Sources[m].activeAt(quarter) {
						continue
					}
					if rng.Float64() < 0.5 {
						if c.emitMention(rng, evIdx, m, evInterval, ts, lastInterval) {
							emitted++
						}
						joins++
					}
				}
			}
		}
	}
	if emitted == 0 {
		// No surviving articles: the event was never observed; drop it.
		c.Events = c.Events[:len(c.Events)-1]
	}
}

// generateReactions emits the follow-up event that trails each headline
// event by a day with slightly lower coverage.
func (c *Corpus) generateReactions(rng *rand.Rand, id int64, day, quarter, active int, lastInterval int32) {
	w := c.World
	evInterval := int32(day*gdelt.IntervalsPerDay + rng.Intn(gdelt.IntervalsPerDay))
	evIdx := int32(len(c.Events))
	c.Events = append(c.Events, Event{ID: id, Interval: evInterval,
		Country: int16(gdelt.CountryIndex("US")), Headline: true, Reaction: true,
		Notes: c.themes.sampleAnnotations(rng, true)})
	ts := c.tailScale(day)
	emitted := 0
	for s := range w.Sources {
		src := &w.Sources[s]
		// Slightly below the igniting event's 0.85 coverage, so reaction
		// rows interleave with primary events in Table III as in the paper.
		if !src.activeAt(quarter) || rng.Float64() >= 0.80 {
			continue
		}
		if c.emitMention(rng, evIdx, int32(s), evInterval, ts, lastInterval) {
			emitted++
		}
	}
	if emitted == 0 {
		c.Events = c.Events[:len(c.Events)-1]
	}
}

func (c *Corpus) angloCountry(country int16) bool {
	if country < 0 {
		return false
	}
	switch gdelt.Countries[country].FIPS {
	case "UK", "US", "AS":
		return true
	}
	return false
}

func sourceTableIndex(country int16) int {
	if country < 0 {
		return len(gdelt.Countries)
	}
	return int(country)
}

// sampleActive draws a source from the table, rejecting sources inactive in
// the quarter. After a few failed tries it reports -1 and the article is
// skipped (events near sparse quarters lose some coverage, as real events
// in low-activity periods do).
func sampleActive(rng *rand.Rand, table *aliasTable, w *World, quarter int) int32 {
	for try := 0; try < 4; try++ {
		s := table.sample(rng)
		if w.Sources[s].activeAt(quarter) {
			return int32(s)
		}
	}
	return -1
}

// emitMention samples a delay for the source's speed profile and appends the
// mention unless it lands beyond the archive end. It reports whether a
// mention was emitted.
func (c *Corpus) emitMention(rng *rand.Rand, evIdx, srcIdx, evInterval int32, tailScale float64, lastInterval int32) bool {
	src := &c.World.Sources[srcIdx]
	delay := sampleDelay(rng, src, tailScale)
	mnInterval64 := int64(evInterval) + delay - 1
	if mnInterval64 > int64(lastInterval) {
		return false
	}
	docLen := int32(500 + rng.Intn(4500))
	if src.Group >= 0 {
		// Co-owned regional outlets push short pieces (Section VII).
		docLen = int32(300 + rng.Intn(500))
	}
	c.Mentions = append(c.Mentions, Mention{
		Event:      evIdx,
		Source:     srcIdx,
		Interval:   int32(mnInterval64),
		DocLen:     docLen,
		Tone:       float32(rng.NormFloat64()*2 - 1),
		Confidence: int8(20 + rng.Intn(81)),
	})
	return true
}

// sampleDelay draws a publishing delay in 15-minute intervals (>= 1) for a
// source. The mixtures implement the Figure 9 structure: lognormal bodies
// per speed class, clamping spikes at the news-cycle caps (24h / week /
// month), slow tails whose weight decays with tailScale over 2018-19, and a
// thin anniversary band just above one year that produces the shared
// ~35135-interval maxima of Table VIII.
func sampleDelay(rng *rand.Rand, src *Source, tailScale float64) int64 {
	const yearBandLo, yearBandHi = gdelt.IntervalsPerYear - 2*gdelt.IntervalsPerDay,
		gdelt.IntervalsPerYear + gdelt.IntervalsPerDay - 1 // 34848 .. 35135
	u := rng.Float64()
	switch src.Speed {
	case SpeedFast:
		if u < 0.01*tailScale {
			return int64(logUniform(rng, 96, 672))
		}
		return int64(logNormalClamped(rng, math.Log(4), 0.8, 1, 96))
	case SpeedAverage:
		pYear := 0.0008 * tailScale
		pMonth := 0.004 * tailScale
		pWeek := 0.02 * tailScale
		switch {
		case u < pYear:
			return int64(yearBandLo) + int64(rng.Intn(yearBandHi-yearBandLo+1))
		case u < pYear+pMonth:
			return int64(logUniform(rng, 672, 2880))
		case u < pYear+pMonth+pWeek:
			return int64(logUniform(rng, 96, 672))
		default:
			return int64(logNormalClamped(rng, math.Log(16), 1.0, 1, float64(src.CycleCap)))
		}
	case SpeedSlow:
		// Slow outlets modernize over 2018-19: as tailScale decays, a
		// growing share of their output follows the 24-hour cycle instead.
		// This drives the Figure 11 decline in >24h articles and the
		// falling average delay of Figure 10a.
		if rng.Float64() > tailScale {
			return int64(logNormalClamped(rng, math.Log(16), 1.0, 1, 96))
		}
		if u < 0.05*tailScale {
			return int64(yearBandLo) + int64(rng.Intn(yearBandHi-yearBandLo+1))
		}
		if u < 0.25 {
			return int64(logNormalClamped(rng, math.Log(48), 1.0, 1, float64(src.CycleCap)))
		}
		return int64(logUniform(rng, 96, float64(src.CycleCap)))
	default: // SpeedArchive
		// Archive republishers modernize like the slow group does; without
		// this their year-scale delays (which the archive can only contain
		// once it is a year old) would drive the quarterly average up
		// instead of down.
		if rng.Float64() > tailScale {
			return int64(logUniform(rng, 96, 2880))
		}
		if u < 0.5 {
			return int64(yearBandLo) + int64(rng.Intn(yearBandHi-yearBandLo+1))
		}
		return int64(logUniform(rng, 2880, gdelt.IntervalsPerYear))
	}
}

// finalize sorts mentions by capture interval, rebuilds per-event article
// counts and first-mention attribution, and drops nothing (events without
// mentions were already dropped during generation).
func (c *Corpus) finalize() {
	sort.Slice(c.Mentions, func(i, j int) bool {
		if c.Mentions[i].Interval != c.Mentions[j].Interval {
			return c.Mentions[i].Interval < c.Mentions[j].Interval
		}
		if c.Mentions[i].Event != c.Mentions[j].Event {
			return c.Mentions[i].Event < c.Mentions[j].Event
		}
		return c.Mentions[i].Source < c.Mentions[j].Source
	})
	for i := range c.Events {
		c.Events[i].NumArticles = 0
		c.Events[i].FirstMention = math.MaxInt32
	}
	for _, m := range c.Mentions {
		ev := &c.Events[m.Event]
		ev.NumArticles++
		if m.Interval < ev.FirstMention {
			ev.FirstMention = m.Interval
			ev.FirstSource = m.Source
		}
	}
}

// injectDefects marks the configured number of missing-URL and future-date
// events, choosing deterministic victims spread across the corpus.
func (c *Corpus) injectDefects() {
	cfg := c.World.Cfg
	if len(c.Events) == 0 {
		return
	}
	rng := rand.New(rand.NewSource(subSeed(cfg.Seed, 0xDEF)))
	pick := func(n int, mark func(*Event) bool) {
		for k := 0; k < n; {
			ev := &c.Events[rng.Intn(len(c.Events))]
			if mark(ev) {
				k++
			}
		}
	}
	pick(min(cfg.DefectMissingSourceURL, len(c.Events)), func(ev *Event) bool {
		if ev.NoURL {
			return false
		}
		ev.NoURL = true
		return true
	})
	pick(min(cfg.DefectFutureEventDate, len(c.Events)), func(ev *Event) bool {
		if ev.FutureDay != 0 || ev.NoURL {
			return false
		}
		// Recorded day 1-3 days after the first article's date.
		firstDay := int(ev.FirstMention) / gdelt.IntervalsPerDay
		shift := 1 + rng.Intn(3)
		di := firstDay + shift
		if di >= len(c.dayYYYYMMDD) {
			di = len(c.dayYYYYMMDD) - 1
			if int32(di*gdelt.IntervalsPerDay) <= ev.FirstMention {
				return false // cannot shift past the archive end
			}
		}
		ev.FutureDay = c.dayYYYYMMDD[di]
		return true
	})
}

// EventDay returns the recorded YYYYMMDD day of event i, honoring the
// future-date defect override.
func (c *Corpus) EventDay(i int) int32 {
	ev := &c.Events[i]
	if ev.FutureDay != 0 {
		return ev.FutureDay
	}
	return c.dayYYYYMMDD[int(ev.Interval)/gdelt.IntervalsPerDay]
}

// IntervalTimestamp returns the timestamp of the start of capture interval
// iv within this corpus.
func (c *Corpus) IntervalTimestamp(iv int32) gdelt.Timestamp {
	return gdelt.IntervalStart(c.baseInterval() + int64(iv))
}

// baseInterval is the global interval index of the archive start.
func (c *Corpus) baseInterval() int64 {
	return gdelt.Timestamp(c.World.Cfg.Start).IntervalIndex()
}

// EventRecord materializes event i as a full gdelt.Event row.
func (c *Corpus) EventRecord(i int) gdelt.Event {
	ev := &c.Events[i]
	rec := gdelt.Event{
		GlobalEventID: ev.ID,
		Day:           c.EventDay(i),
		EventCode:     190, // CAMEO "use conventional force" family placeholder
		QuadClass:     4,
		IsRootEvent:   true,
		Goldstein:     -2,
		NumMentions:   ev.NumArticles,
		NumSources:    ev.NumArticles,
		NumArticles:   ev.NumArticles,
		AvgTone:       -1,
		DateAdded:     c.IntervalTimestamp(ev.FirstMention),
	}
	if ev.Country >= 0 {
		rec.ActionCountry = gdelt.Countries[ev.Country].FIPS
	}
	if !ev.NoURL {
		rec.SourceURL = c.eventURL(ev)
	}
	return rec
}

// eventURL builds the first-article URL. Headline events get descriptive
// slugs so the ten-most-reported table reads like the paper's (mass
// shootings and their reaction follow-ups).
func (c *Corpus) eventURL(ev *Event) string {
	src := c.World.Sources[ev.FirstSource].Name
	year := c.dayYYYYMMDD[int(ev.Interval)/gdelt.IntervalsPerDay] / 10000
	switch {
	case ev.Reaction:
		return fmt.Sprintf("https://%s/reactions-to-mass-shooting-%d-%d", src, year, ev.ID)
	case ev.Headline:
		return fmt.Sprintf("https://%s/mass-shooting-%d-%d", src, year, ev.ID)
	}
	return c.articleURL(ev.FirstSource, ev.ID, 0)
}

// MentionRecord materializes mention j as a full gdelt.Mention row.
func (c *Corpus) MentionRecord(j int) gdelt.Mention {
	m := &c.Mentions[j]
	ev := &c.Events[m.Event]
	return gdelt.Mention{
		GlobalEventID: ev.ID,
		EventTime:     c.IntervalTimestamp(ev.Interval),
		MentionTime:   c.IntervalTimestamp(m.Interval),
		MentionType:   gdelt.MentionTypeWeb,
		SourceName:    c.World.Sources[m.Source].Name,
		Identifier:    c.articleURL(m.Source, ev.ID, j),
		SentenceID:    1,
		Confidence:    m.Confidence,
		DocLen:        m.DocLen,
		DocTone:       m.Tone,
	}
}

func (c *Corpus) articleURL(src int32, eventID int64, k int) string {
	return fmt.Sprintf("https://%s/article/%d-%d", c.World.Sources[src].Name, eventID, k)
}

// Stats summarizes the corpus for Table I.
type Stats struct {
	Sources          int
	Events           int
	CaptureIntervals int
	Articles         int
	MinArticles      int32
	MaxArticles      int32
	WeightedAvg      float64
}

// Stats computes the Table I summary of the corpus.
func (c *Corpus) Stats() Stats {
	s := Stats{
		Sources:          len(c.World.Sources),
		Events:           len(c.Events),
		Articles:         len(c.Mentions),
		CaptureIntervals: c.World.Days() * gdelt.IntervalsPerDay,
	}
	if len(c.Events) > 0 {
		s.MinArticles = math.MaxInt32
		for i := range c.Events {
			n := c.Events[i].NumArticles
			if n < s.MinArticles {
				s.MinArticles = n
			}
			if n > s.MaxArticles {
				s.MaxArticles = n
			}
		}
		s.WeightedAvg = float64(len(c.Mentions)) / float64(len(c.Events))
	}
	return s
}
