package gen

import (
	"math"
	"math/rand"
	"testing"

	"gdeltmine/internal/gdelt"
)

func TestConfigValidate(t *testing.T) {
	if err := Small().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Small()
	bad.Sources = 5
	if bad.Validate() == nil {
		t.Fatal("too few sources should fail")
	}
	bad = Small()
	bad.End = bad.Start
	if bad.Validate() == nil {
		t.Fatal("empty span should fail")
	}
	bad = Small()
	bad.PopularityAlpha = 1.5
	if bad.Validate() == nil {
		t.Fatal("alpha <= 2 should fail")
	}
	bad = Small()
	bad.MediaGroupSize = 1
	if bad.Validate() == nil {
		t.Fatal("tiny media group should fail")
	}
	bad = Small()
	bad.IntervalsPerFile = 0
	if bad.Validate() == nil {
		t.Fatal("zero chunk size should fail")
	}
	bad = Small()
	bad.UntaggedFraction = 0.95
	if bad.Validate() == nil {
		t.Fatal("huge untagged fraction should fail")
	}
	bad = Small()
	bad.EventsPerDay = 0
	if bad.Validate() == nil {
		t.Fatal("zero rate should fail")
	}
}

func TestConfigCalendar(t *testing.T) {
	c := Small()
	// 18 Feb 2015 .. 31 Dec 2019.
	if got := c.Days(); got != 1778 {
		t.Fatalf("days %d want 1778", got)
	}
	if got := c.Quarters(); got != 20 {
		t.Fatalf("quarters %d want 20", got)
	}
}

func TestSpeedClassString(t *testing.T) {
	names := map[SpeedClass]string{SpeedFast: "fast", SpeedAverage: "average",
		SpeedSlow: "slow", SpeedArchive: "archive", SpeedClass(9): "unknown"}
	for c, want := range names {
		if c.String() != want {
			t.Fatalf("%d -> %q want %q", c, c.String(), want)
		}
	}
}

func TestWorldDeterminism(t *testing.T) {
	a, err := NewWorld(Small())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWorld(Small())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Sources) != len(b.Sources) {
		t.Fatal("source counts differ")
	}
	for i := range a.Sources {
		if a.Sources[i] != b.Sources[i] {
			t.Fatalf("source %d differs: %+v vs %+v", i, a.Sources[i], b.Sources[i])
		}
	}
}

func TestWorldStructure(t *testing.T) {
	w, err := NewWorld(Small())
	if err != nil {
		t.Fatal(err)
	}
	cfg := w.Cfg
	if len(w.Sources) != cfg.Sources {
		t.Fatalf("sources %d", len(w.Sources))
	}
	// Media group: first MediaGroupSize sources, all UK, full activity.
	uk := int16(gdelt.CountryIndex("UK"))
	for i := 0; i < cfg.MediaGroupSize; i++ {
		s := w.Sources[i]
		if s.Group != 0 || s.Country != uk || s.StartQ != 0 || int(s.EndQ) != w.Quarters()-1 {
			t.Fatalf("group source %d malformed: %+v", i, s)
		}
	}
	if got := len(w.GroupMembers(0)); got != cfg.MediaGroupSize {
		t.Fatalf("group members %d", got)
	}
	// Every source has a resolvable TLD country and a positive weight.
	for i, s := range w.Sources {
		if s.Weight <= 0 {
			t.Fatalf("source %d weight %v", i, s.Weight)
		}
		ci := gdelt.CountryFromDomain(s.Name)
		if ci != int(s.Country) {
			t.Fatalf("source %d %q: TLD country %d != %d", i, s.Name, ci, s.Country)
		}
		if s.StartQ < 0 || s.EndQ >= int16(w.Quarters()) || s.StartQ > s.EndQ {
			t.Fatalf("source %d activity window [%d,%d]", i, s.StartQ, s.EndQ)
		}
	}
}

func TestWorldActiveFractionAboutOneThird(t *testing.T) {
	w, err := NewWorld(Standard())
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for q := 0; q < w.Quarters(); q++ {
		sum += float64(w.ActiveSources(q))
	}
	frac := sum / float64(w.Quarters()*len(w.Sources))
	if frac < 0.22 || frac > 0.5 {
		t.Fatalf("mean active fraction %.3f not near 1/3", frac)
	}
}

func TestAliasTableDistribution(t *testing.T) {
	weights := []float64{1, 2, 0, 4}
	tbl := newAliasTable(weights)
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 4)
	const n = 200000
	for i := 0; i < n; i++ {
		counts[tbl.sample(rng)]++
	}
	if counts[2] != 0 {
		t.Fatalf("zero-weight index sampled %d times", counts[2])
	}
	for i, w := range weights {
		if w == 0 {
			continue
		}
		got := float64(counts[i]) / n
		want := w / 7
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("index %d freq %.4f want %.4f", i, got, want)
		}
	}
}

func TestAliasTableEdge(t *testing.T) {
	if newAliasTable(nil) != nil {
		t.Fatal("empty weights should give nil table")
	}
	if newAliasTable([]float64{0, 0}) != nil {
		t.Fatal("all-zero weights should give nil table")
	}
	tbl := newAliasTable([]float64{5})
	rng := rand.New(rand.NewSource(2))
	if tbl.sample(rng) != 0 {
		t.Fatal("single-element table must sample 0")
	}
}

func TestAliasTableNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	newAliasTable([]float64{1, -1})
}

func TestPoissonMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, lambda := range []float64{0, 0.5, 4, 60} {
		var sum float64
		const n = 50000
		for i := 0; i < n; i++ {
			sum += float64(poisson(rng, lambda))
		}
		mean := sum / n
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Fatalf("lambda %v: mean %v", lambda, mean)
		}
	}
}

func TestParetoIntBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 100000; i++ {
		k := paretoInt(rng, 2.35, 100)
		if k < 1 || k > 100 {
			t.Fatalf("pareto sample %d out of [1,100]", k)
		}
	}
	if paretoInt(rng, 2.35, 1) != 1 {
		t.Fatal("max=1 should always return 1")
	}
}

func TestParetoIntMeanNearTheory(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var sum float64
	const n = 300000
	for i := 0; i < n; i++ {
		sum += float64(paretoInt(rng, 2.35, 1000000))
	}
	mean := sum / n
	// Continuous Pareto mean (alpha-1)/(alpha-2) = 3.857 minus the floor
	// bias of about 0.5.
	if mean < 2.7 || mean > 4.2 {
		t.Fatalf("pareto mean %v, want near 3.4 (the Table I weighted average)", mean)
	}
}

func TestLogHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 10000; i++ {
		x := logUniform(rng, 96, 672)
		if x < 96 || x > 672 {
			t.Fatalf("logUniform out of range: %v", x)
		}
		y := logNormalClamped(rng, math.Log(16), 1, 1, 96)
		if y < 1 || y > 96 {
			t.Fatalf("logNormalClamped out of range: %v", y)
		}
	}
	if got := logUniform(rng, 10, 10); got != 10 {
		t.Fatalf("degenerate logUniform %v", got)
	}
}

func TestSubSeedStability(t *testing.T) {
	a := subSeed(42, 7)
	b := subSeed(42, 7)
	c := subSeed(42, 8)
	d := subSeed(43, 7)
	if a != b {
		t.Fatal("subSeed not deterministic")
	}
	if a == c || a == d {
		t.Fatal("subSeed streams collide")
	}
}
