package gen

import (
	"fmt"
	"math"
	"math/rand"

	"gdeltmine/internal/gdelt"
)

// Source is one synthetic news outlet.
type Source struct {
	// Name is the source domain, e.g. "heraldcourier4.co.uk".
	Name string
	// Country indexes gdelt.Countries.
	Country int16
	// Weight is the productivity weight driving article-assignment draws.
	Weight float64
	// Group is the media-group id, or -1 for independents.
	Group int16
	// StartQ and EndQ bound the source's active quarters (inclusive,
	// relative to the archive's first quarter).
	StartQ, EndQ int16
	// Speed classifies the delay profile.
	Speed SpeedClass
	// CycleCap is the news-cycle cap on delays, in 15-minute intervals:
	// 96 (a day), 672 (a week), 2880 (a month) or 35040 (a year).
	CycleCap int32
}

// World is the sampled news landscape: the fixed cast of sources plus the
// per-event-country sampling tables used to assign articles to sources.
type World struct {
	Cfg     Config
	Sources []Source

	// eventCountry samples the country of a new event; index
	// len(gdelt.Countries) means "untagged".
	eventCountry *aliasTable
	// sourceByCountry[c] samples a reporting source for an event in country
	// c (last entry: untagged events).
	sourceByCountry []*aliasTable
	// groupMembers lists source indexes per media group.
	groupMembers [][]int32
	quarters     int
	days         int
}

// Country event-frequency weights (events recorded per country) and
// international-interest multipliers (how strongly foreign press reports on
// events there). Tuned so the reported-country ordering follows Table VI
// (events: US, UK, India, China, Australia, Canada, Nigeria, Russia, Israel,
// Pakistan) while article volumes give Russia and Israel more foreign pull
// than their event counts alone would.
var (
	eventWeightByFIPS = map[string]float64{
		"US": 0.400, "UK": 0.055, "IN": 0.040, "CH": 0.036, "AS": 0.033,
		"CA": 0.030, "NI": 0.028, "RS": 0.026, "IS": 0.024, "PK": 0.022,
	}
	defaultEventWeight = 0.0052 // the ~50 remaining countries share the rest
	interestByFIPS     = map[string]float64{
		"US": 1.00, "UK": 0.95, "IN": 0.70, "CH": 0.70, "AS": 0.85,
		"CA": 0.80, "NI": 0.50, "RS": 1.20, "IS": 1.10, "PK": 0.60,
	}
	defaultInterest = 0.45
	// sameCountryBoost is the mild home bias visible in Table VII (e.g.
	// Australian press over-reports Australia by roughly 2x).
	sameCountryBoost = 2.0
)

// Source-population weights per country: the share of the world's outlets
// hosted under each TLD, tuned so publishing-country article volumes order
// as in Table VI's columns (UK, USA, Australia, India, Italy, Canada, South
// Africa, Nigeria, Bangladesh, Philippines).
var sourceCountryWeights = map[string]float64{
	"UK": 0.26, "US": 0.24, "AS": 0.13, "IN": 0.07, "IT": 0.035,
	"CA": 0.032, "SF": 0.026, "NI": 0.020, "BG": 0.016, "RP": 0.012,
}

const defaultSourceCountryWeight = 0.003

var sourceNameWords = []string{
	"herald", "courier", "gazette", "echo", "times", "post", "tribune",
	"observer", "chronicle", "argus", "express", "journal", "standard",
	"mercury", "sentinel", "record", "press", "globe", "mail", "star",
	"daily", "evening", "morning", "county", "metro", "citizen", "leader",
	"advertiser", "bulletin", "telegraph", "examiner", "register", "voice",
}

// NewWorld samples the fixed world (sources and sampling tables) for a
// configuration.
func NewWorld(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	w := &World{Cfg: cfg, quarters: cfg.Quarters(), days: cfg.Days()}
	rng := rand.New(rand.NewSource(subSeed(cfg.Seed, 0xA0)))
	w.buildSources(rng)
	w.buildAliasTables()
	return w, nil
}

// Quarters returns the number of quarters covered by the world.
func (w *World) Quarters() int { return w.quarters }

// Days returns the number of days covered by the world.
func (w *World) Days() int { return w.days }

// GroupMembers returns the source indexes of media group g.
func (w *World) GroupMembers(g int) []int32 { return w.groupMembers[g] }

func (w *World) buildSources(rng *rand.Rand) {
	cfg := w.Cfg
	w.Sources = make([]Source, cfg.Sources)

	// Country assignment for sources. Major outlets (the top productivity
	// decile) are drawn from the ten big publishing countries only, so the
	// publishing-country volume ordering (Table VI's columns) is stable
	// even at small world sizes; the long tail spreads over all countries.
	countryWeights := make([]float64, len(gdelt.Countries))
	majorWeights := make([]float64, len(gdelt.Countries))
	for i, c := range gdelt.Countries {
		if wgt, ok := sourceCountryWeights[c.FIPS]; ok {
			countryWeights[i] = wgt
			majorWeights[i] = wgt
		} else {
			countryWeights[i] = defaultSourceCountryWeight
		}
	}
	countryPick := newAliasTable(countryWeights)
	majorPick := newAliasTable(majorWeights)

	ukIdx := int16(gdelt.CountryIndex("UK"))
	for i := range w.Sources {
		s := &w.Sources[i]
		s.Group = -1
		if i < cfg.MediaGroupSize {
			// The co-owned regional group: British, hyper-productive,
			// active over the whole archive, average speed. These become
			// the paper's top-10 publishers.
			s.Country = ukIdx
			s.Group = 0
			s.StartQ, s.EndQ = 0, int16(w.quarters-1)
			s.Speed = SpeedAverage
			s.CycleCap = gdelt.IntervalsPerDay
			// Zipf head with mild decay so the group members have similar,
			// dominant-but-not-overwhelming volumes; the spread matches the
			// ~3x range across the top publishers in Figure 6, and the tail
			// members overlap the biggest independents so the top-10 ends
			// up mostly — not entirely — group-owned, as in the paper.
			s.Weight = 11 / math.Pow(float64(i+1), 0.25)
		} else {
			if i < cfg.MediaGroupSize+cfg.Sources/10 {
				s.Country = int16(majorPick.sample(rng))
			} else {
				s.Country = int16(countryPick.sample(rng))
			}
			// Flat-ish Zipf productivity over rank: the news sphere has a
			// long, heavy tail of modest outlets.
			rank := float64(i-cfg.MediaGroupSize) + 2
			s.Weight = 10 / math.Pow(rank, 0.65)
			// Major independents (the top decile by rank) persist over the
			// whole archive, like real national outlets. The long tail has
			// windows of mean ~7 of 20 quarters, so about a third of all
			// sources are active at any time (Figure 3). Tail windows may
			// notionally begin before the archive or end after it, which
			// keeps the per-quarter active count flat instead of ramping at
			// the boundaries.
			if i < cfg.MediaGroupSize+cfg.Sources/10 {
				s.StartQ, s.EndQ = 0, int16(w.quarters-1)
			} else {
				length := 4 + rng.Intn(7)
				start := rng.Intn(w.quarters+length-1) - (length - 1)
				end := start + length - 1
				if start < 0 {
					start = 0
				}
				if end > w.quarters-1 {
					end = w.quarters - 1
				}
				s.StartQ, s.EndQ = int16(start), int16(end)
			}
			s.Speed, s.CycleCap = sampleSpeed(rng)
			// High-volume outlets are dailies: a weekly, monthly or archive
			// publication cannot plausibly sit among the top publishers
			// (the paper's entire Table VIII is in the 24h-cycle group).
			if i < cfg.MediaGroupSize+cfg.Sources/10 && s.Speed != SpeedFast {
				s.Speed, s.CycleCap = SpeedAverage, gdelt.IntervalsPerDay
			}
		}
		s.Name = sourceName(rng, i, gdelt.Countries[s.Country].TLD)
	}
	w.groupMembers = make([][]int32, 1)
	for i := 0; i < cfg.MediaGroupSize; i++ {
		w.groupMembers[0] = append(w.groupMembers[0], int32(i))
	}
}

// sampleSpeed draws a speed class and its news-cycle cap. Fractions follow
// Section VI-E: a fast core (~12%), the big 24-hour-cycle average group
// (~55%), a large slow group split across week/month cycles (~31%), and a
// sliver of archive republishers (~2%) providing the min-delay outliers.
func sampleSpeed(rng *rand.Rand) (SpeedClass, int32) {
	u := rng.Float64()
	switch {
	case u < 0.12:
		return SpeedFast, gdelt.IntervalsPerDay
	case u < 0.67:
		return SpeedAverage, gdelt.IntervalsPerDay
	case u < 0.85:
		return SpeedSlow, 7 * gdelt.IntervalsPerDay // weekly format
	case u < 0.98:
		return SpeedSlow, 30 * gdelt.IntervalsPerDay // monthly format
	default:
		return SpeedArchive, gdelt.IntervalsPerYear
	}
}

func sourceName(rng *rand.Rand, i int, tld string) string {
	a := sourceNameWords[rng.Intn(len(sourceNameWords))]
	b := sourceNameWords[rng.Intn(len(sourceNameWords))]
	for b == a {
		b = sourceNameWords[rng.Intn(len(sourceNameWords))]
	}
	return fmt.Sprintf("%s%s%d.%s", a, b, i, tld)
}

// buildAliasTables precomputes the event-country distribution and, for each
// possible event country, the source-selection distribution with interest
// and home-bias baked in.
func (w *World) buildAliasTables() {
	nc := len(gdelt.Countries)
	evw := make([]float64, nc+1)
	var tagged float64
	for i, c := range gdelt.Countries {
		wgt, ok := eventWeightByFIPS[c.FIPS]
		if !ok {
			wgt = defaultEventWeight
		}
		evw[i] = wgt
		tagged += wgt
	}
	// Untagged events are a fixed fraction of the total.
	evw[nc] = tagged * w.Cfg.UntaggedFraction / (1 - w.Cfg.UntaggedFraction)
	w.eventCountry = newAliasTable(evw)

	w.sourceByCountry = make([]*aliasTable, nc+1)
	weights := make([]float64, len(w.Sources))
	for ec := 0; ec <= nc; ec++ {
		interest := defaultInterest
		if ec < nc {
			if v, ok := interestByFIPS[gdelt.Countries[ec].FIPS]; ok {
				interest = v
			}
		} else {
			interest = 1 // untagged events: pure productivity
		}
		for i := range w.Sources {
			wgt := w.Sources[i].Weight * interest
			// Home bias applies everywhere except the US: Table VII shows
			// the US share of reporting nearly flat across publishing
			// countries (40.99% for US outlets vs ~39% elsewhere), while
			// smaller countries over-report themselves by about 2x.
			if ec < nc && int(w.Sources[i].Country) == ec && gdelt.Countries[ec].FIPS != "US" {
				wgt *= sameCountryBoost
			}
			weights[i] = wgt
		}
		w.sourceByCountry[ec] = newAliasTable(weights)
	}
}

// quarterOfDay maps a day offset to a quarter index relative to the archive
// start.
func (w *World) quarterOfDay(day int) int {
	ts := gdelt.TimestampFromTime(w.Cfg.Start.Time().AddDate(0, 0, day))
	return quarterIndexOf(ts) - quarterIndexOf(w.Cfg.Start)
}

// activeAt reports whether source s is active in quarter q.
func (s *Source) activeAt(q int) bool {
	return int(s.StartQ) <= q && q <= int(s.EndQ)
}

// ActiveSources returns the number of sources active in quarter q.
func (w *World) ActiveSources(q int) int {
	n := 0
	for i := range w.Sources {
		if w.Sources[i].activeAt(q) {
			n++
		}
	}
	return n
}
