package engine

import (
	"sync"
	"time"

	"gdeltmine/internal/obs"
)

// Per-query-kind scan metrics. The engine does not know query names by
// itself — callers label it with WithKind (the HTTP layer uses the endpoint
// name, the CLI uses the -query value) and every kernel then records its
// latency and row coverage under that label, giving EXPERIMENTS.md runs
// engine-internal numbers instead of wall clock alone.
type kindMetrics struct {
	scans   *obs.Counter
	rows    *obs.Counter
	seconds *obs.Histogram
}

// kindCache avoids a registry lookup on every kernel invocation.
var kindCache sync.Map // kind string -> *kindMetrics

func metricsFor(kind string) *kindMetrics {
	if m, ok := kindCache.Load(kind); ok {
		return m.(*kindMetrics)
	}
	m := &kindMetrics{
		scans: obs.Default.Counter("engine_scans_total",
			"scan kernels executed", obs.L("kind", kind)),
		rows: obs.Default.Counter("engine_rows_scanned_total",
			"table rows covered by scan kernels", obs.L("kind", kind)),
		seconds: obs.Default.Histogram("engine_scan_seconds",
			"scan kernel latency in seconds", obs.LatencyBuckets, obs.L("kind", kind)),
	}
	actual, _ := kindCache.LoadOrStore(kind, m)
	return actual.(*kindMetrics)
}

// observeScan records one finished kernel run over rows table rows.
func (e *Engine) observeScan(rows int, start time.Time) {
	m := metricsFor(e.Kind())
	m.scans.Inc()
	m.rows.Add(int64(rows))
	m.seconds.ObserveSince(start)
}
