package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"gdeltmine/internal/obs"
	"gdeltmine/internal/parallel"
)

// Per-query-kind scan metrics. The engine does not know query names by
// itself — callers label it with WithKind (the HTTP layer uses the endpoint
// name, the CLI uses the -query value) and every kernel then records its
// latency and row coverage under that label, giving EXPERIMENTS.md runs
// engine-internal numbers instead of wall clock alone.
type kindMetrics struct {
	scans   *obs.Counter
	rows    *obs.Counter
	pruned  *obs.Counter
	seconds *obs.Histogram
}

// kindCache avoids a registry lookup on every kernel invocation.
var kindCache sync.Map // kind string -> *kindMetrics

func metricsFor(kind string) *kindMetrics {
	if m, ok := kindCache.Load(kind); ok {
		return m.(*kindMetrics)
	}
	m := &kindMetrics{
		scans: obs.Default.Counter("engine_scans_total",
			"scan kernels executed", obs.L("kind", kind)),
		rows: obs.Default.Counter("engine_rows_scanned_total",
			"table rows actually touched by scan kernels", obs.L("kind", kind)),
		pruned: obs.Default.Counter("scan_rows_pruned_total",
			"rows skipped by postings-pruned scans (domain size minus rows touched)",
			obs.L("kind", kind)),
		seconds: obs.Default.Histogram("engine_scan_seconds",
			"scan kernel latency in seconds", obs.LatencyBuckets, obs.L("kind", kind)),
	}
	actual, _ := kindCache.LoadOrStore(kind, m)
	return actual.(*kindMetrics)
}

// scansAll counts kernels across every kind, the denominator of the
// allocations-per-scan gauge below.
var scansAll atomic.Int64

// allocPerScan makes kernel GC churn observable: pooled-accumulator pool
// misses (fresh allocations) divided by scan kernels executed. Near zero
// once the pools are warm; a climb flags an accumulator shape the pools
// don't cover.
var allocPerScan = obs.Default.Gauge("engine_accumulator_allocs_per_scan",
	"pooled accumulator allocations per scan kernel (pool misses / scans)")

// observeScan records one finished kernel run that touched rows table rows.
func (e *Engine) observeScan(rows int, start time.Time) {
	e.observeScanPruned(rows, rows, start)
}

// observeScanPruned records a kernel that touched `touched` of a `domain`-row
// scan domain: a full scan reports touched == domain, a postings-pruned or
// selection-vector scan reports the rows it actually visited, and the
// difference lands in scan_rows_pruned_total so the pruning win is visible
// in /metrics rather than inferred.
func (e *Engine) observeScanPruned(touched, domain int, start time.Time) {
	m := metricsFor(e.Kind())
	m.scans.Inc()
	m.rows.Add(int64(touched))
	if domain > touched {
		m.pruned.Add(int64(domain - touched))
	}
	m.seconds.ObserveSince(start)
	if scans := scansAll.Add(1); scans > 0 {
		allocPerScan.Set(float64(parallel.PoolAllocs()) / float64(scans))
	}
}
