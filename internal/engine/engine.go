// Package engine implements the parallel query execution engine of Section
// IV: read-only scan kernels over the columnar store with per-worker partial
// aggregates merged at the end, the goroutine analogue of the paper's
// OpenMP-parallel aggregated queries. The worker count is explicit so the
// strong-scaling experiment (Figure 12) can sweep it.
package engine

import (
	"container/heap"
	"context"
	"sort"
	"time"

	"gdeltmine/internal/matrix"
	"gdeltmine/internal/parallel"
	"gdeltmine/internal/store"
)

// Engine executes queries against one immutable store, optionally
// restricted to a capture-interval window.
//
// Derivation semantics: every With* mutator (WithWorkers, WithContext,
// WithKind, WithInterval) copies the receiver by value and returns the
// modified copy; the receiver itself is never mutated, and no two views
// share mutable state. A base engine can therefore be derived from freely
// and concurrently — the property that lets one query descriptor be
// executed against many per-request views while cached results stay
// attributable to the shared immutable store underneath.
type Engine struct {
	db      *store.DB
	workers int
	ctx     context.Context
	// kind labels the engine's scan metrics with the query being served.
	kind string
	// plan pins selection queries to a physical plan; PlanAuto defers to
	// the cost-based planner (planner.go).
	plan PlanMode
	// worker binds kernels to the pool worker executing this view (shard
	// affinity + worker-keyed accumulator reuse); see WithWorker.
	worker *parallel.Worker
	// Mention-row window [rowLo, rowHi); rowHi == 0 means the full table.
	rowLo, rowHi int64
}

// New returns an engine over db using the default worker count.
func New(db *store.DB) *Engine { return &Engine{db: db} }

// WithWorkers returns a copy of the engine pinned to a worker count;
// n <= 0 restores the default.
func (e *Engine) WithWorkers(n int) *Engine {
	cp := *e
	cp.workers = n
	return &cp
}

// WithContext returns a copy of the engine whose scans observe ctx: workers
// stop claiming work once ctx is cancelled, bounding the latency of an
// abandoned query (e.g. an HTTP client that hung up) to one scan grain. A
// cancelled scan returns a partial aggregate — callers that surface results
// must check ctx.Err() afterwards.
func (e *Engine) WithContext(ctx context.Context) *Engine {
	cp := *e
	cp.ctx = ctx
	return &cp
}

// WithKind returns a copy of the engine whose scan metrics are labelled
// with the given query kind (e.g. the endpoint or -query name). An empty
// kind restores the default "adhoc" label.
func (e *Engine) WithKind(kind string) *Engine {
	cp := *e
	cp.kind = kind
	return &cp
}

// Kind returns the metric label of this engine view.
func (e *Engine) Kind() string {
	if e.kind == "" {
		return "adhoc"
	}
	return e.kind
}

// WithWorker returns a copy of the engine bound to the pool worker whose
// goroutine will execute the view's kernels — the handle a parallel.FanOut
// shard job receives. Kernels then advertise their grains on that worker's
// own deque (the worker that started a shard keeps draining it while idle
// peers steal) and draw accumulators from the worker's freelists, so the
// same worker re-executing a shard reuses the same memory. The binding is
// goroutine-local by contract: bind only the worker currently executing
// the caller, and never share the bound view across goroutines.
func (e *Engine) WithWorker(w *parallel.Worker) *Engine {
	cp := *e
	cp.worker = w
	return &cp
}

// WithInterval returns a copy of the engine whose mention scans cover only
// articles captured in intervals [fromIv, toIv). The restriction maps to a
// contiguous row range because the mention table is interval-sorted, so
// windowed queries touch no memory outside the window. Event-table scans
// and postings-based queries are unaffected.
func (e *Engine) WithInterval(fromIv, toIv int32) *Engine {
	cp := *e
	cp.rowLo, cp.rowHi = e.db.MentionRowRange(fromIv, toIv)
	if cp.rowHi == 0 && cp.rowLo == 0 {
		cp.rowHi = -1 // explicit empty window, distinct from "unset"
	}
	return &cp
}

// WithRowWindow returns a copy of the engine whose mention scans cover the
// intersection of the current window with rows [lo, hi). The qlang pushdown
// planner narrows the scan this way after resolving range clauses (interval
// and quarter comparisons) to a contiguous row span by binary search.
func (e *Engine) WithRowWindow(lo, hi int) *Engine {
	curLo, curHi := e.mentionWindow()
	if lo < curLo {
		lo = curLo
	}
	if hi > curHi {
		hi = curHi
	}
	cp := *e
	if lo >= hi {
		cp.rowLo, cp.rowHi = 0, -1 // explicit empty window
		return &cp
	}
	cp.rowLo, cp.rowHi = int64(lo), int64(hi)
	return &cp
}

// mentionWindow returns the effective mention-row range of this engine.
func (e *Engine) mentionWindow() (lo, hi int) {
	if e.rowHi == 0 && e.rowLo == 0 {
		return 0, e.db.Mentions.Len()
	}
	if e.rowHi < 0 {
		return 0, 0
	}
	return int(e.rowLo), int(e.rowHi)
}

// WindowSize returns the number of mention rows visible to this engine.
func (e *Engine) WindowSize() int {
	lo, hi := e.mentionWindow()
	return hi - lo
}

// Window returns the effective half-open mention-row range [lo, hi) this
// engine view scans. Because the mention table is interval-sorted and
// immutable at a given store version, the pair canonically identifies the
// time window — result caches use it as the window component of their key.
func (e *Engine) Window() (lo, hi int) { return e.mentionWindow() }

// Context returns the cancellation context of this engine view, or
// context.Background() when none was attached.
func (e *Engine) Context() context.Context {
	if e.ctx == nil {
		return context.Background()
	}
	return e.ctx
}

// DB returns the underlying store.
func (e *Engine) DB() *store.DB { return e.db }

// Workers returns the effective worker count.
func (e *Engine) Workers() int {
	if e.workers > 0 {
		return e.workers
	}
	return parallel.DefaultWorkers()
}

// ScanOptions returns the parallel options scan kernels should run under:
// the engine's worker count plus its cancellation context. Query packages
// building their own parallel loops use this instead of raw Options so
// request cancellation reaches every kernel.
func (e *Engine) ScanOptions() parallel.Options {
	return parallel.Options{Workers: e.workers, Context: e.ctx, Worker: e.worker}
}

func (e *Engine) opt() parallel.Options { return e.ScanOptions() }

// CountMentions counts mention rows in the window satisfying pred.
func (e *Engine) CountMentions(pred func(row int) bool) int64 {
	wlo, whi := e.mentionWindow()
	defer e.observeScan(whi-wlo, time.Now())
	return parallel.CountIf(whi-wlo, e.opt(), func(i int) bool { return pred(wlo + i) })
}

// GroupCount aggregates mention rows in the window into numGroups counters.
// groupOf returns the group of a row, or a negative value to skip it. Each
// worker owns a private counter array; arrays merge once at the end.
func (e *Engine) GroupCount(numGroups int, groupOf func(row int) int) []int64 {
	wlo, whi := e.mentionWindow()
	defer e.observeScan(whi-wlo, time.Now())
	res := parallel.MapReduceW(whi-wlo, e.opt(),
		newInt64W(numGroups),
		func(acc []int64, lo, hi int) []int64 {
			for row := wlo + lo; row < wlo+hi; row++ {
				if g := groupOf(row); g >= 0 {
					acc[g]++
				}
			}
			return acc
		},
		mergeReleaseInt64,
	)
	return e.copyOutInt64(res)
}

// GroupCountEvents aggregates event rows into numGroups counters.
func (e *Engine) GroupCountEvents(numGroups int, groupOf func(row int) int) []int64 {
	defer e.observeScan(e.db.Events.Len(), time.Now())
	res := parallel.MapReduceW(e.db.Events.Len(), e.opt(),
		newInt64W(numGroups),
		func(acc []int64, lo, hi int) []int64 {
			for row := lo; row < hi; row++ {
				if g := groupOf(row); g >= 0 {
					acc[g]++
				}
			}
			return acc
		},
		mergeReleaseInt64,
	)
	return e.copyOutInt64(res)
}

// CrossCount aggregates mention rows in the window into a rows×cols
// contingency matrix. keys returns the cell of a row; either coordinate
// negative skips the row. This is the kernel behind the single aggregated
// query that produces Tables V, VI and VII (Section VI-G / Figure 12).
func (e *Engine) CrossCount(rows, cols int, keys func(row int) (r, c int)) *matrix.Int64 {
	wlo, whi := e.mentionWindow()
	defer e.observeScan(whi-wlo, time.Now())
	return parallel.MapReduceW(whi-wlo, e.opt(),
		func(w *parallel.Worker) *matrix.Int64 { return newPooledInt64Matrix(w, rows, cols) },
		func(acc *matrix.Int64, lo, hi int) *matrix.Int64 {
			for row := wlo + lo; row < wlo+hi; row++ {
				r, c := keys(row)
				if r >= 0 && c >= 0 {
					acc.Inc(r, c)
				}
			}
			return acc
		},
		e.mergeReleaseMatrix,
	)
}

// SumByGroup accumulates val(row) over the window into numGroups sums.
func (e *Engine) SumByGroup(numGroups int, keyVal func(row int) (g int, v float64)) []float64 {
	wlo, whi := e.mentionWindow()
	defer e.observeScan(whi-wlo, time.Now())
	res := parallel.MapReduceW(whi-wlo, e.opt(),
		newFloat64W(numGroups),
		func(acc []float64, lo, hi int) []float64 {
			for row := wlo + lo; row < wlo+hi; row++ {
				if g, v := keyVal(row); g >= 0 {
					acc[g] += v
				}
			}
			return acc
		},
		mergeReleaseFloat64,
	)
	return e.copyOutFloat64(res)
}

// TopK returns the indexes of the k largest values (ties broken toward the
// lower index), in descending value order. It runs a single pass with a
// size-k min-heap, the selection used for "ten most productive websites"
// and "ten most reported events".
func TopK(n, k int, value func(i int) int64) []int {
	if k <= 0 || n <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	h := &topHeap{value: value}
	for i := 0; i < n; i++ {
		if h.Len() < k {
			heap.Push(h, i)
			continue
		}
		if less(h, i, h.items[0]) {
			continue
		}
		h.items[0] = i
		heap.Fix(h, 0)
	}
	out := h.items
	sort.Slice(out, func(a, b int) bool {
		va, vb := value(out[a]), value(out[b])
		if va != vb {
			return va > vb
		}
		return out[a] < out[b]
	})
	return out
}

// less reports whether candidate i ranks below heap element j (i.e. i
// should not displace j).
func less(h *topHeap, i, j int) bool {
	vi, vj := h.value(i), h.value(j)
	if vi != vj {
		return vi < vj
	}
	return i > j // prefer the lower index on ties
}

type topHeap struct {
	items []int
	value func(i int) int64
}

func (h *topHeap) Len() int { return len(h.items) }
func (h *topHeap) Less(a, b int) bool {
	va, vb := h.value(h.items[a]), h.value(h.items[b])
	if va != vb {
		return va < vb
	}
	return h.items[a] > h.items[b]
}
func (h *topHeap) Swap(a, b int)      { h.items[a], h.items[b] = h.items[b], h.items[a] }
func (h *topHeap) Push(x interface{}) { h.items = append(h.items, x.(int)) }
func (h *topHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	x := old[n-1]
	h.items = old[:n-1]
	return x
}
