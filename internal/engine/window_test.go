package engine

import (
	"testing"
)

func TestWithIntervalRestrictsScans(t *testing.T) {
	db := testDB(t)
	e := New(db)
	total := e.CountMentions(func(int) bool { return true })
	if total != int64(db.Mentions.Len()) {
		t.Fatalf("unwindowed count %d", total)
	}

	// Split the archive at the midpoint interval; the two halves partition
	// the mentions.
	mid := db.Meta.Intervals / 2
	first := e.WithInterval(0, mid)
	second := e.WithInterval(mid, db.Meta.Intervals)
	c1 := first.CountMentions(func(int) bool { return true })
	c2 := second.CountMentions(func(int) bool { return true })
	if c1+c2 != total {
		t.Fatalf("window halves %d+%d != %d", c1, c2, total)
	}
	if c1 == 0 || c2 == 0 {
		t.Fatal("degenerate split")
	}
	if first.WindowSize() != int(c1) || second.WindowSize() != int(c2) {
		t.Fatal("WindowSize disagrees with count")
	}

	// Every row visible in the first window is actually before mid.
	bad := first.CountMentions(func(row int) bool { return db.Mentions.Interval[row] >= mid })
	if bad != 0 {
		t.Fatalf("%d rows outside window visible", bad)
	}
}

func TestWithIntervalEmptyWindow(t *testing.T) {
	db := testDB(t)
	e := New(db).WithInterval(5, 5)
	if got := e.CountMentions(func(int) bool { return true }); got != 0 {
		t.Fatalf("empty window counted %d", got)
	}
	if e.WindowSize() != 0 {
		t.Fatal("empty window size")
	}
	// Window before any data.
	e2 := New(db).WithInterval(0, 0)
	if e2.WindowSize() != 0 {
		t.Fatal("zero-width window should be empty")
	}
}

func TestWindowedGroupCountPartitions(t *testing.T) {
	db := testDB(t)
	e := New(db)
	whole := e.GroupCount(db.Sources.Len(), func(row int) int { return int(db.Mentions.Source[row]) })
	mid := db.Meta.Intervals / 3
	a := e.WithInterval(0, mid).GroupCount(db.Sources.Len(), func(row int) int { return int(db.Mentions.Source[row]) })
	b := e.WithInterval(mid, db.Meta.Intervals).GroupCount(db.Sources.Len(), func(row int) int { return int(db.Mentions.Source[row]) })
	for s := range whole {
		if a[s]+b[s] != whole[s] {
			t.Fatalf("source %d: %d+%d != %d", s, a[s], b[s], whole[s])
		}
	}
}

func TestWindowedSumByGroupPartitions(t *testing.T) {
	db := testDB(t)
	e := New(db)
	keyVal := func(row int) (int, float64) {
		return db.QuarterOfInterval(db.Mentions.Interval[row]), float64(db.Mentions.Delay[row])
	}
	whole := e.SumByGroup(db.NumQuarters(), keyVal)
	mid := db.Meta.Intervals / 2
	a := e.WithInterval(0, mid).SumByGroup(db.NumQuarters(), keyVal)
	b := e.WithInterval(mid, db.Meta.Intervals).SumByGroup(db.NumQuarters(), keyVal)
	for q := range whole {
		if diff := a[q] + b[q] - whole[q]; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("quarter %d: %v + %v != %v", q, a[q], b[q], whole[q])
		}
	}
}

func TestWindowedCrossCountSubsetOfWhole(t *testing.T) {
	db := testDB(t)
	e := New(db)
	keys := func(row int) (int, int) {
		ev := db.Mentions.EventRow[row]
		return int(db.Events.Country[ev]), int(db.SourceCountry[db.Mentions.Source[row]])
	}
	whole := e.CrossCount(61, 61, keys)
	quarterLo, quarterHi := db.QuarterMentionRange(4)
	_ = quarterLo
	_ = quarterHi
	win := e.WithInterval(0, db.Meta.Intervals/2).CrossCount(61, 61, keys)
	for i := range whole.Data {
		if win.Data[i] > whole.Data[i] {
			t.Fatalf("windowed cell %d exceeds whole", i)
		}
	}
	if win.Sum() >= whole.Sum() {
		t.Fatal("window did not restrict anything")
	}
}
