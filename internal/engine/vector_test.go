package engine

import "testing"

func TestColPredZeroValuePassesEverything(t *testing.T) {
	var p ColPred
	if !p.empty() {
		t.Fatal("zero ColPred should be empty (match everything)")
	}
	p = PredGT([]int32{0, 5, 10}, 4)
	sel := p.sel(0, 3, nil)
	if len(sel) != 2 || sel[0] != 1 || sel[1] != 2 {
		t.Fatalf("PredGT selection = %v, want [1 2]", sel)
	}
	p = PredRange([]int32{0, 5, 10}, 5, 5)
	sel = p.sel(0, 3, nil)
	if len(sel) != 1 || sel[0] != 1 {
		t.Fatalf("PredRange selection = %v, want [1]", sel)
	}
	p = PredLE([]int32{0, 5, 10}, 0)
	sel = p.sel(1, 3, nil) // offset segment: indices are absolute
	if len(sel) != 0 {
		t.Fatalf("PredLE selection = %v, want empty", sel)
	}
}

func TestClipRowsNarrowsToWindow(t *testing.T) {
	db := testDB(t)
	e := New(db)
	all := make([]int32, db.Mentions.Len())
	for i := range all {
		all[i] = int32(i)
	}
	if got := e.ClipRows(all); len(got) != len(all) {
		t.Fatalf("full window clipped %d of %d rows", len(got), len(all))
	}
	we := e.WithInterval(db.Meta.Intervals/4, db.Meta.Intervals/2)
	lo, hi := we.Window()
	got := we.ClipRows(all)
	if len(got) != hi-lo {
		t.Fatalf("window clip kept %d rows, want %d", len(got), hi-lo)
	}
	for _, r := range got {
		if int(r) < lo || int(r) >= hi {
			t.Fatalf("clipped row %d outside window [%d,%d)", r, lo, hi)
		}
	}
	// Empty window clips everything.
	if got := e.WithInterval(db.Meta.Intervals/2, db.Meta.Intervals/2).ClipRows(all); len(got) != 0 {
		t.Fatalf("empty window kept %d rows", len(got))
	}
}

func TestTypedKernelsRepeatedCallsStayClean(t *testing.T) {
	// Repeated invocations reuse pooled accumulators; results must not
	// accumulate garbage across calls.
	db := testDB(t)
	e := New(db).WithWorkers(2)
	first := e.GroupCountCol(db.Sources.Len(), db.Mentions.Source, nil)
	for i := 0; i < 10; i++ {
		again := e.GroupCountCol(db.Sources.Len(), db.Mentions.Source, nil)
		for g := range first {
			if again[g] != first[g] {
				t.Fatalf("call %d: group %d = %d, first call %d", i, g, again[g], first[g])
			}
		}
	}
	m1 := e.CrossCountCols(2, 4, db.Mentions.Source, nil, db.Mentions.Interval, nil)
	for i := 0; i < 10; i++ {
		m2 := e.CrossCountCols(2, 4, db.Mentions.Source, nil, db.Mentions.Interval, nil)
		for j := range m1.Data {
			if m2.Data[j] != m1.Data[j] {
				t.Fatalf("call %d: cell %d = %d, first call %d", i, j, m2.Data[j], m1.Data[j])
			}
		}
	}
}
