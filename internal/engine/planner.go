package engine

import (
	"fmt"

	"gdeltmine/internal/obs"
)

// The cost-based planner (DESIGN.md §12). Selection queries (CoReport,
// FollowReport) have three physical plans with identical results:
//
//   - rows: union the selected sources' row bitmaps and touch only those
//     mention rows, grouped by event. Work is O(selected rows), the right
//     plan when the selection is a small fraction of the table.
//   - events: union the selected sources' event bitmaps and scan the full
//     mention lists of only the candidate events. Work is O(rows of touched
//     events) — strictly a subset of the full scan — the right plan when the
//     selection covers much of the table and per-row extraction overhead
//     would exceed the sequential scan it displaces.
//   - scan: the closure reference over every event. Never chosen
//     automatically; reachable only by forcing, for baselines and
//     differential tests.
//
// The estimate driving the choice is exact, not sampled: source postings are
// disjoint, so selectivity = Σ bitmap cardinalities / mention rows, each
// cardinality an O(containers) register sum.

// PlanMode selects the physical execution plan for selection queries.
type PlanMode uint8

const (
	// PlanAuto lets the planner choose from bitmap cardinalities.
	PlanAuto PlanMode = iota
	// PlanRows forces bitmap-pruned row extraction.
	PlanRows
	// PlanEvents forces the candidate-events plan.
	PlanEvents
	// PlanScan forces the full closure scan.
	PlanScan
)

// RowsPlanThreshold is the selectivity at or below which the planner picks
// the rows plan: below it the selection's rows are sparse enough that
// extracting exactly them beats rescanning whole events. Above it the
// events plan wins — it stays within a constant of the dense scan while
// still skipping untouched events.
const RowsPlanThreshold = 0.20

// String renders the mode as its registry parameter value.
func (m PlanMode) String() string {
	switch m {
	case PlanRows:
		return "rows"
	case PlanEvents:
		return "events"
	case PlanScan:
		return "scan"
	default:
		return "auto"
	}
}

// ParsePlanMode parses a registry "plan" parameter value.
func ParsePlanMode(s string) (PlanMode, error) {
	switch s {
	case "", "auto":
		return PlanAuto, nil
	case "rows":
		return PlanRows, nil
	case "events":
		return PlanEvents, nil
	case "scan":
		return PlanScan, nil
	}
	return PlanAuto, fmt.Errorf("engine: unknown plan mode %q (want auto, rows, events or scan)", s)
}

// WithPlan returns a copy of the engine pinned to a plan mode. PlanAuto
// (the default) defers to PlanSelection's cost estimate per query.
func (e *Engine) WithPlan(m PlanMode) *Engine {
	cp := *e
	cp.plan = m
	return &cp
}

// Plan returns the engine view's plan mode.
func (e *Engine) Plan() PlanMode { return e.plan }

// plannerChoices counts resolved plans by path, one counter per label value.
var plannerChoices = [...]*obs.Counter{
	PlanRows: obs.Default.Counter("planner_choice_total",
		"selection plans resolved by the cost-based planner", obs.L("path", "rows")),
	PlanEvents: obs.Default.Counter("planner_choice_total",
		"selection plans resolved by the cost-based planner", obs.L("path", "events")),
	PlanScan: obs.Default.Counter("planner_choice_total",
		"selection plans resolved by the cost-based planner", obs.L("path", "scan")),
}

// ObservePlan records the resolved plan of one executed selection query.
// Exported for the sharded view, which resolves plans itself.
func ObservePlan(m PlanMode) {
	if int(m) < len(plannerChoices) && plannerChoices[m] != nil {
		plannerChoices[m].Inc()
	}
}

// PlanSelection resolves the physical plan for a query over the given
// source selection. Forced modes pass through; PlanAuto estimates
// selectivity from the selection's row-bitmap cardinalities and picks rows
// below RowsPlanThreshold, events above. The resolved choice is recorded in
// planner_choice_total{path=...}.
func (e *Engine) PlanSelection(sources []int32) PlanMode {
	m := e.plan
	if m == PlanAuto {
		m = PlanRows
		nm := e.db.Mentions.Len()
		if nm > 0 {
			var sel int64
			for i, s := range sources {
				dup := false
				for _, p := range sources[:i] {
					if p == s {
						dup = true
						break
					}
				}
				if !dup {
					sel += e.db.SourceRowBitmap(s).Cardinality()
				}
			}
			if float64(sel)/float64(nm) > RowsPlanThreshold {
				m = PlanEvents
			}
		}
	}
	ObservePlan(m)
	return m
}
