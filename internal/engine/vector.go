// Vectorized scan kernels and postings-pruned execution (DESIGN.md §9).
//
// The closure kernels in engine.go dispatch through a func value per row —
// a call the compiler cannot inline, sitting between the worker loop and
// the column data. The typed kernels below are the batch fast path: they
// take the int32 column slices themselves (plus optional int32 remap
// lookup tables) and iterate them directly inside the worker loop, with
// bounds checks hoisted to one slice header per grain. Predicates run as a
// separate stage that materializes pooled selection vectors — row-index
// batches — which the aggregation stage then consumes, the classic
// filter→aggregate decomposition of vectorized engines.
//
// The ScanRows family executes over explicit row lists instead of the full
// window. Queries restricted to a handful of sources (co-/follow-reporting
// over top-k publishers) feed it the union of those sources' postings,
// turning O(window) scans into O(Σ postings of the k sources); the scan
// metrics record rows actually touched plus a scan_rows_pruned_total
// counter so the win shows up in /metrics.
package engine

import (
	"math"
	"sort"
	"time"

	"gdeltmine/internal/matrix"
	"gdeltmine/internal/parallel"
)

// ColPred is a typed predicate over an int32 column: a row passes when
// Min <= Col[row] <= Max. The zero value (nil Col) passes every row, so
// kernels taking an optional predicate accept ColPred{} for "no filter".
type ColPred struct {
	Col      []int32
	Min, Max int32
}

// PredGT selects rows whose column value is strictly greater than v.
func PredGT(col []int32, v int32) ColPred {
	return ColPred{Col: col, Min: v + 1, Max: math.MaxInt32}
}

// PredLE selects rows whose column value is at most v.
func PredLE(col []int32, v int32) ColPred {
	return ColPred{Col: col, Min: math.MinInt32, Max: v}
}

// PredRange selects rows whose column value lies in [min, max].
func PredRange(col []int32, min, max int32) ColPred {
	return ColPred{Col: col, Min: min, Max: max}
}

// empty reports whether the predicate is the match-everything zero value.
func (p ColPred) empty() bool { return p.Col == nil }

// sel appends the rows of [lo, hi) that pass the predicate to out — the
// selection-vector stage. out is typically a pooled buffer (parallel.GetInt32).
func (p ColPred) sel(lo, hi int, out []int32) []int32 {
	seg := p.Col[lo:hi]
	for i, v := range seg {
		if v >= p.Min && v <= p.Max {
			out = append(out, int32(lo+i))
		}
	}
	return out
}

// The accumulator helpers below are worker-keyed: partials are drawn from
// the freelist of the pool worker executing the runner and released back to
// the worker that folds them, so a worker repeatedly executing the same
// shard's kernels cycles the same buffers. Off-pool (nil worker) they
// degrade to the shared sync.Pool.

// newInt64W returns a partial allocator drawing from the executing
// worker's freelist.
func newInt64W(n int) func(*parallel.Worker) []int64 {
	return func(w *parallel.Worker) []int64 { return w.GetInt64(n) }
}

// newFloat64W is newInt64W's float64 counterpart.
func newFloat64W(n int) func(*parallel.Worker) []float64 {
	return func(w *parallel.Worker) []float64 { return w.GetFloat64(n) }
}

// mergeReleaseInt64 folds src into dst and recycles src's buffer to the
// folding worker.
func mergeReleaseInt64(w *parallel.Worker, dst, src []int64) []int64 {
	for i, v := range src {
		dst[i] += v
	}
	w.PutInt64(src)
	return dst
}

// mergeReleaseFloat64 folds src into dst and recycles src's buffer to the
// folding worker.
func mergeReleaseFloat64(w *parallel.Worker, dst, src []float64) []float64 {
	for i, v := range src {
		dst[i] += v
	}
	w.PutFloat64(src)
	return dst
}

// copyOutInt64 copies a pooled result into a caller-owned slice and
// recycles the buffer to the view's bound worker.
func (e *Engine) copyOutInt64(res []int64) []int64 {
	out := append([]int64(nil), res...)
	e.worker.PutInt64(res)
	return out
}

func (e *Engine) copyOutFloat64(res []float64) []float64 {
	out := append([]float64(nil), res...)
	e.worker.PutFloat64(res)
	return out
}

// groupCountSeg is the shared inner loop: count col values (optionally
// remapped) into acc. Groups outside [0, len(acc)) are skipped via one
// unsigned compare, which also rejects negative remap entries.
func groupCountSeg(acc []int64, seg []int32, remap []int32) {
	n := uint32(len(acc))
	if remap == nil {
		for _, g := range seg {
			if uint32(g) < n {
				acc[g]++
			}
		}
		return
	}
	for _, v := range seg {
		if g := remap[v]; uint32(g) < n {
			acc[g]++
		}
	}
}

// GroupCountCol is the typed fast path of GroupCount: aggregate the mention
// window into numGroups counters where a row's group is remap[col[row]]
// (or col[row] itself when remap is nil). Out-of-range and negative groups
// are skipped, matching the closure contract.
func (e *Engine) GroupCountCol(numGroups int, col []int32, remap []int32) []int64 {
	wlo, whi := e.mentionWindow()
	defer e.observeScan(whi-wlo, time.Now())
	res := parallel.MapReduceW(whi-wlo, e.opt(),
		newInt64W(numGroups),
		func(acc []int64, lo, hi int) []int64 {
			groupCountSeg(acc, col[wlo+lo:wlo+hi], remap)
			return acc
		},
		mergeReleaseInt64,
	)
	return e.copyOutInt64(res)
}

// GroupCountColSel is GroupCountCol behind a typed predicate: each grain
// first materializes a pooled selection vector of passing rows, then
// aggregates over it — no per-row closure call in either stage.
func (e *Engine) GroupCountColSel(numGroups int, col, remap []int32, pred ColPred) []int64 {
	if pred.empty() {
		return e.GroupCountCol(numGroups, col, remap)
	}
	wlo, whi := e.mentionWindow()
	defer e.observeScan(whi-wlo, time.Now())
	n := uint32(numGroups)
	res := parallel.MapReduceW(whi-wlo, e.opt(),
		newInt64W(numGroups),
		func(acc []int64, lo, hi int) []int64 {
			sel := pred.sel(wlo+lo, wlo+hi, parallel.GetInt32(0))
			if remap == nil {
				for _, r := range sel {
					if g := col[r]; uint32(g) < n {
						acc[g]++
					}
				}
			} else {
				for _, r := range sel {
					if g := remap[col[r]]; uint32(g) < n {
						acc[g]++
					}
				}
			}
			parallel.PutInt32(sel)
			return acc
		},
		mergeReleaseInt64,
	)
	return e.copyOutInt64(res)
}

// GroupCountEventsCol is the typed fast path of GroupCountEvents, with an
// optional predicate (ColPred{} scans every event). Event scans ignore the
// mention window, like their closure counterpart.
func (e *Engine) GroupCountEventsCol(numGroups int, col, remap []int32, pred ColPred) []int64 {
	ne := e.db.Events.Len()
	defer e.observeScan(ne, time.Now())
	res := parallel.MapReduceW(ne, e.opt(),
		newInt64W(numGroups),
		func(acc []int64, lo, hi int) []int64 {
			if pred.empty() {
				groupCountSeg(acc, col[lo:hi], remap)
				return acc
			}
			sel := pred.sel(lo, hi, parallel.GetInt32(0))
			n := uint32(numGroups)
			if remap == nil {
				for _, r := range sel {
					if g := col[r]; uint32(g) < n {
						acc[g]++
					}
				}
			} else {
				for _, r := range sel {
					if g := remap[col[r]]; uint32(g) < n {
						acc[g]++
					}
				}
			}
			parallel.PutInt32(sel)
			return acc
		},
		mergeReleaseInt64,
	)
	return e.copyOutInt64(res)
}

// remapElem is the element type of a remap lookup table. Narrow tables
// (int16 country or quarter columns) matter: the remap load is the one
// random access in the cross-count hot loop, and halving the table halves
// its cache footprint.
type remapElem interface {
	~int16 | ~int32
}

// crossCountSeg accumulates one contiguous row segment into a contingency
// matrix: cell (rmap[rcol[row]], cmap[ccol[row]]), nil remaps meaning the
// column holds the coordinate directly. Rows with either coordinate out of
// range are skipped (signed -1 markers become huge after the unsigned
// conversion). The nil checks are hoisted out of the row loop — four
// specialized loops — so the hot path is two loads, two unsigned compares
// and one indexed increment per row.
func crossCountSeg[R, C remapElem](acc *matrix.Int64, lo, hi int, rcol []int32, rmap []R, ccol []int32, cmap []C) {
	nr, nc := uint32(acc.Rows), uint32(acc.Cols)
	cols := acc.Cols
	data := acc.Data
	rseg, cseg := rcol[lo:hi], ccol[lo:hi]
	cseg = cseg[:len(rseg)] // bounds-check hint: cseg[i] is in range below
	switch {
	case rmap != nil && cmap != nil:
		// 4-way unroll: the remap loads are independent across rows, so
		// unrolling lets the cache misses overlap instead of serializing.
		i, n := 0, len(rseg)
		for ; i+4 <= n; i += 4 {
			r0, c0 := rmap[rseg[i]], cmap[cseg[i]]
			r1, c1 := rmap[rseg[i+1]], cmap[cseg[i+1]]
			r2, c2 := rmap[rseg[i+2]], cmap[cseg[i+2]]
			r3, c3 := rmap[rseg[i+3]], cmap[cseg[i+3]]
			if uint32(r0) < nr && uint32(c0) < nc {
				data[int(r0)*cols+int(c0)]++
			}
			if uint32(r1) < nr && uint32(c1) < nc {
				data[int(r1)*cols+int(c1)]++
			}
			if uint32(r2) < nr && uint32(c2) < nc {
				data[int(r2)*cols+int(c2)]++
			}
			if uint32(r3) < nr && uint32(c3) < nc {
				data[int(r3)*cols+int(c3)]++
			}
		}
		for ; i < n; i++ {
			r, c := rmap[rseg[i]], cmap[cseg[i]]
			if uint32(r) < nr && uint32(c) < nc {
				data[int(r)*cols+int(c)]++
			}
		}
	case rmap != nil:
		for i, rv := range rseg {
			r, c := rmap[rv], cseg[i]
			if uint32(r) < nr && uint32(c) < nc {
				data[int(r)*cols+int(c)]++
			}
		}
	case cmap != nil:
		for i, rv := range rseg {
			c := cmap[cseg[i]]
			if uint32(rv) < nr && uint32(c) < nc {
				data[int(rv)*cols+int(c)]++
			}
		}
	default:
		for i, rv := range rseg {
			cv := cseg[i]
			if uint32(rv) < nr && uint32(cv) < nc {
				data[int(rv)*cols+int(cv)]++
			}
		}
	}
}

// newPooledInt64Matrix backs a worker-partial matrix with a buffer from
// the executing worker's freelist (shared pool off-worker).
func newPooledInt64Matrix(w *parallel.Worker, rows, cols int) *matrix.Int64 {
	return &matrix.Int64{Rows: rows, Cols: cols, Data: w.GetInt64(rows * cols)}
}

// parallelMergeMin is the matrix size (elements) past which partial-matrix
// merges go through the pairwise-parallel AddMatrixParallel path.
const parallelMergeMin = 1 << 16

// mergeReleaseMatrix folds src into dst (in parallel for large matrices)
// and recycles src's pooled backing buffer to the folding worker.
func (e *Engine) mergeReleaseMatrix(w *parallel.Worker, dst, src *matrix.Int64) *matrix.Int64 {
	var err error
	if len(dst.Data) >= parallelMergeMin {
		err = dst.AddMatrixParallel(src, 4)
	} else {
		err = dst.AddMatrix(src)
	}
	if err != nil {
		panic(err) // identical shapes by construction
	}
	w.PutInt64(src.Data)
	src.Data = nil
	return dst
}

// CrossCountCols is the typed fast path of CrossCount: build a rows×cols
// contingency matrix over the mention window where a row's cell is
// (rmap[rcol[row]], cmap[ccol[row]]). This is the kernel behind the
// aggregated country query's cross-reporting pass (Section VI-G).
func (e *Engine) CrossCountCols(rows, cols int, rcol, rmap, ccol, cmap []int32) *matrix.Int64 {
	return CrossCountRemap(e, rows, cols, rcol, rmap, ccol, cmap)
}

// CrossCountRemap is CrossCountCols with remap tables of any supported
// element width. It is a free function because Go methods cannot be generic;
// pass the narrowest table available — store columns like the int16 country
// attributions can be used as remaps directly, without widening to a
// separate int32 LUT that doubles the cache footprint of the hot loop's one
// random load.
func CrossCountRemap[R, C remapElem](e *Engine, rows, cols int, rcol []int32, rmap []R, ccol []int32, cmap []C) *matrix.Int64 {
	wlo, whi := e.mentionWindow()
	defer e.observeScan(whi-wlo, time.Now())
	return parallel.MapReduceW(whi-wlo, e.opt(),
		func(w *parallel.Worker) *matrix.Int64 { return newPooledInt64Matrix(w, rows, cols) },
		func(acc *matrix.Int64, lo, hi int) *matrix.Int64 {
			crossCountSeg(acc, wlo+lo, wlo+hi, rcol, rmap, ccol, cmap)
			return acc
		},
		e.mergeReleaseMatrix,
	)
}

// SumByGroupCol is the typed fast path of SumByGroup: accumulate the
// float32 value column into numGroups sums, grouped by remap[gcol[row]]
// (or gcol[row] when remap is nil).
func (e *Engine) SumByGroupCol(numGroups int, gcol, remap []int32, vals []float32) []float64 {
	wlo, whi := e.mentionWindow()
	defer e.observeScan(whi-wlo, time.Now())
	n := uint32(numGroups)
	res := parallel.MapReduceW(whi-wlo, e.opt(),
		newFloat64W(numGroups),
		func(acc []float64, lo, hi int) []float64 {
			gseg, vseg := gcol[wlo+lo:wlo+hi], vals[wlo+lo:wlo+hi]
			if remap == nil {
				for i, g := range gseg {
					if uint32(g) < n {
						acc[g] += float64(vseg[i])
					}
				}
			} else {
				for i, v := range gseg {
					if g := remap[v]; uint32(g) < n {
						acc[g] += float64(vseg[i])
					}
				}
			}
			return acc
		},
		mergeReleaseFloat64,
	)
	return e.copyOutFloat64(res)
}

// CrossSumCols accumulates the float32 value column into a flattened
// rows×cols grid of sums: cell (rmap[rcol[row]], cmap[ccol[row]]), row-major
// in the returned slice. It is the float companion of CrossCountCols (the
// tone-by-country query sums tone per country×quarter with it).
func (e *Engine) CrossSumCols(rows, cols int, rcol, rmap, ccol, cmap []int32, vals []float32) []float64 {
	wlo, whi := e.mentionWindow()
	defer e.observeScan(whi-wlo, time.Now())
	nr, nc := uint32(rows), uint32(cols)
	res := parallel.MapReduceW(whi-wlo, e.opt(),
		newFloat64W(rows * cols),
		func(acc []float64, lo, hi int) []float64 {
			rseg, cseg, vseg := rcol[wlo+lo:wlo+hi], ccol[wlo+lo:wlo+hi], vals[wlo+lo:wlo+hi]
			for i, rv := range rseg {
				cv := cseg[i]
				if rmap != nil {
					rv = rmap[rv]
				}
				if cmap != nil {
					cv = cmap[cv]
				}
				if uint32(rv) < nr && uint32(cv) < nc {
					acc[int(rv)*cols+int(cv)] += float64(vseg[i])
				}
			}
			return acc
		},
		mergeReleaseFloat64,
	)
	return e.copyOutFloat64(res)
}

// ClipRows narrows an ascending row list (a postings list — ascending by
// interval and therefore by row id, since mentions are interval-sorted) to
// the engine's mention window, by binary search on the row ids.
func (e *Engine) ClipRows(rows []int32) []int32 {
	wlo, whi := e.mentionWindow()
	if wlo == 0 && whi == e.db.Mentions.Len() {
		return rows
	}
	lo := sort.Search(len(rows), func(i int) bool { return int(rows[i]) >= wlo })
	hi := sort.Search(len(rows), func(i int) bool { return int(rows[i]) >= whi })
	return rows[lo:hi]
}

// ScanRows runs a MapReduce-style aggregation over an explicit row list —
// the postings-pruned analogue of the windowed kernels. rows is any slice
// of row indices (mention rows or event rows; the body knows which table
// it addresses), and domain is the size of the scan the list replaces
// (window size or table length): the metrics record len(rows) as touched
// and domain−len(rows) as pruned. body receives contiguous sub-slices of
// rows and must be safe to run concurrently.
func ScanRows[A any](e *Engine, rows []int32, domain int,
	newPartial func() A, body func(acc A, rows []int32) A, merge func(dst, src A) A) A {
	defer e.observeScanPruned(len(rows), domain, time.Now())
	return parallel.MapReduce(len(rows), e.opt(), newPartial,
		func(acc A, lo, hi int) A { return body(acc, rows[lo:hi]) },
		merge,
	)
}

// GroupCountRows is GroupCountCol over an explicit row list: counts
// remap[col[r]] for every r in rows. domain sizes the pruning metric.
func (e *Engine) GroupCountRows(numGroups int, rows []int32, domain int, col, remap []int32) []int64 {
	defer e.observeScanPruned(len(rows), domain, time.Now())
	res := parallel.MapReduceW(len(rows), e.opt(),
		newInt64W(numGroups),
		func(acc []int64, lo, hi int) []int64 {
			n := uint32(numGroups)
			seg := rows[lo:hi]
			if remap == nil {
				for _, r := range seg {
					if g := col[r]; uint32(g) < n {
						acc[g]++
					}
				}
			} else {
				for _, r := range seg {
					if g := remap[col[r]]; uint32(g) < n {
						acc[g]++
					}
				}
			}
			return acc
		},
		mergeReleaseInt64,
	)
	return e.copyOutInt64(res)
}

// CrossCountRows is CrossCountCols over an explicit row list: cell
// (rmap[rcol[r]], cmap[ccol[r]]) for every r in rows. domain sizes the
// pruning metric.
func (e *Engine) CrossCountRows(nr, nc int, rows []int32, domain int, rcol, rmap, ccol, cmap []int32) *matrix.Int64 {
	defer e.observeScanPruned(len(rows), domain, time.Now())
	unr, unc := uint32(nr), uint32(nc)
	return parallel.MapReduceW(len(rows), e.opt(),
		func(w *parallel.Worker) *matrix.Int64 { return newPooledInt64Matrix(w, nr, nc) },
		func(acc *matrix.Int64, lo, hi int) *matrix.Int64 {
			data := acc.Data
			if rmap != nil && cmap != nil {
				for _, r := range rows[lo:hi] {
					rv, cv := rmap[rcol[r]], cmap[ccol[r]]
					if uint32(rv) < unr && uint32(cv) < unc {
						data[int(rv)*nc+int(cv)]++
					}
				}
				return acc
			}
			for _, r := range rows[lo:hi] {
				rv, cv := rcol[r], ccol[r]
				if rmap != nil {
					rv = rmap[rv]
				}
				if cmap != nil {
					cv = cmap[cv]
				}
				if uint32(rv) < unr && uint32(cv) < unc {
					data[int(rv)*nc+int(cv)]++
				}
			}
			return acc
		},
		e.mergeReleaseMatrix,
	)
}
