package engine

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"gdeltmine/internal/convert"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/store"
)

var cachedDB *store.DB

func testDB(t testing.TB) *store.DB {
	t.Helper()
	if cachedDB == nil {
		c, err := gen.Generate(gen.Small())
		if err != nil {
			t.Fatal(err)
		}
		res, err := convert.FromCorpus(c)
		if err != nil {
			t.Fatal(err)
		}
		cachedDB = res.DB
	}
	return cachedDB
}

func TestCountMentionsMatchesSerial(t *testing.T) {
	db := testDB(t)
	e := New(db)
	pred := func(row int) bool { return db.Mentions.Delay[row] > 96 }
	var want int64
	for row := 0; row < db.Mentions.Len(); row++ {
		if pred(row) {
			want++
		}
	}
	for _, w := range []int{1, 2, 7} {
		if got := e.WithWorkers(w).CountMentions(pred); got != want {
			t.Fatalf("workers=%d count %d want %d", w, got, want)
		}
	}
}

func TestGroupCountBySource(t *testing.T) {
	db := testDB(t)
	e := New(db)
	got := e.GroupCount(db.Sources.Len(), func(row int) int { return int(db.Mentions.Source[row]) })
	want := make([]int64, db.Sources.Len())
	for _, s := range db.Mentions.Source {
		want[s]++
	}
	for s := range want {
		if got[s] != want[s] {
			t.Fatalf("source %d count %d want %d", s, got[s], want[s])
		}
	}
	// Postings agree with the group counts.
	for s := 0; s < db.Sources.Len(); s++ {
		if int64(len(db.SourceMentions(int32(s)))) != want[s] {
			t.Fatalf("postings disagree for source %d", s)
		}
	}
}

func TestGroupCountSkipsNegative(t *testing.T) {
	db := testDB(t)
	e := New(db)
	got := e.GroupCount(1, func(row int) int {
		if db.Mentions.Delay[row] > 10 {
			return -1
		}
		return 0
	})
	var want int64
	for _, d := range db.Mentions.Delay {
		if d <= 10 {
			want++
		}
	}
	if got[0] != want {
		t.Fatalf("count %d want %d", got[0], want)
	}
}

func TestGroupCountEvents(t *testing.T) {
	db := testDB(t)
	e := New(db)
	got := e.GroupCountEvents(db.NumQuarters(), func(row int) int {
		return db.QuarterOfInterval(db.Events.Interval[row])
	})
	var total int64
	for _, v := range got {
		total += v
	}
	if total != int64(db.Events.Len()) {
		t.Fatalf("event quarter counts sum %d want %d", total, db.Events.Len())
	}
}

func TestCrossCountMatchesSerial(t *testing.T) {
	db := testDB(t)
	e := New(db)
	keys := func(row int) (int, int) {
		ev := db.Mentions.EventRow[row]
		rc := int(db.Events.Country[ev])
		cc := int(db.SourceCountry[db.Mentions.Source[row]])
		return rc, cc
	}
	got := e.CrossCount(61, 61, keys)
	want := make(map[[2]int]int64)
	for row := 0; row < db.Mentions.Len(); row++ {
		r, c := keys(row)
		if r >= 0 && c >= 0 {
			want[[2]int{r, c}]++
		}
	}
	var checked int
	for rc, n := range want {
		if got.At(rc[0], rc[1]) != n {
			t.Fatalf("cell %v: %d want %d", rc, got.At(rc[0], rc[1]), n)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no tagged cells checked")
	}
	// Worker counts do not change the result.
	for _, w := range []int{1, 3, 16} {
		alt := e.WithWorkers(w).CrossCount(61, 61, keys)
		for i := range got.Data {
			if alt.Data[i] != got.Data[i] {
				t.Fatalf("workers=%d cell %d differs", w, i)
			}
		}
	}
}

func TestSumByGroup(t *testing.T) {
	db := testDB(t)
	e := New(db)
	got := e.SumByGroup(db.NumQuarters(), func(row int) (int, float64) {
		return db.QuarterOfInterval(db.Mentions.Interval[row]), float64(db.Mentions.Delay[row])
	})
	want := make([]float64, db.NumQuarters())
	for row := 0; row < db.Mentions.Len(); row++ {
		q := db.QuarterOfInterval(db.Mentions.Interval[row])
		want[q] += float64(db.Mentions.Delay[row])
	}
	for q := range want {
		if diff := got[q] - want[q]; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("quarter %d sum %v want %v", q, got[q], want[q])
		}
	}
}

func TestWorkersAccessors(t *testing.T) {
	db := testDB(t)
	e := New(db)
	if e.DB() != db {
		t.Fatal("DB accessor")
	}
	if e.WithWorkers(3).Workers() != 3 {
		t.Fatal("WithWorkers")
	}
	if e.WithWorkers(3).WithWorkers(0).Workers() <= 0 {
		t.Fatal("default workers")
	}
	// WithWorkers must not mutate the receiver.
	e2 := e.WithWorkers(5)
	if e.workers != 0 || e2.workers != 5 {
		t.Fatal("WithWorkers mutated receiver")
	}
}

// TestDerivedViewsNeverMutateParent pins the documented With* contract: every
// mutator copies the receiver by value, so a shared base engine can be
// derived from concurrently (one view per request) without any view
// observing another's settings.
func TestDerivedViewsNeverMutateParent(t *testing.T) {
	db := testDB(t)
	base := New(db)
	snapshot := *base

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	derived := base.
		WithWorkers(7).
		WithKind("country").
		WithContext(ctx).
		WithInterval(0, db.Meta.Intervals/2)

	if *base != snapshot {
		t.Fatalf("derivation mutated the parent: %+v -> %+v", snapshot, *base)
	}
	if base.Kind() != "adhoc" || base.Context() != context.Background() {
		t.Fatal("parent kind/context changed")
	}
	if lo, hi := base.Window(); lo != 0 || hi != db.Mentions.Len() {
		t.Fatal("parent window changed")
	}
	if derived.Workers() != 7 || derived.Kind() != "country" || derived.Context() != ctx {
		t.Fatalf("derived view lost settings: workers=%d kind=%s", derived.Workers(), derived.Kind())
	}
	if derived.WindowSize() >= db.Mentions.Len() {
		t.Fatal("derived window not applied")
	}
	// Sibling derivations are independent of each other too.
	sib := base.WithKind("stats")
	if sib.Workers() != base.Workers() || derived.Kind() != "country" {
		t.Fatal("sibling derivation leaked settings")
	}
}

func TestTopK(t *testing.T) {
	vals := []int64{5, 1, 9, 9, 3, 0, 7}
	got := TopK(len(vals), 3, func(i int) int64 { return vals[i] })
	if len(got) != 3 || got[0] != 2 || got[1] != 3 || got[2] != 6 {
		t.Fatalf("top3 %v", got)
	}
	// k > n returns all, sorted.
	got = TopK(len(vals), 100, func(i int) int64 { return vals[i] })
	if len(got) != len(vals) || got[0] != 2 || got[len(got)-1] != 5 {
		t.Fatalf("topAll %v", got)
	}
	if TopK(0, 3, nil) != nil || TopK(5, 0, nil) != nil {
		t.Fatal("degenerate TopK should be nil")
	}
}

func TestTopKMatchesSortRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		k := 1 + rng.Intn(20)
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(50))
		}
		got := TopK(n, k, func(i int) int64 { return vals[i] })
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			if vals[idx[a]] != vals[idx[b]] {
				return vals[idx[a]] > vals[idx[b]]
			}
			return idx[a] < idx[b]
		})
		want := idx
		if k < n {
			want = idx[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: len %d want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: pos %d got %d want %d (vals %v)", trial, i, got[i], want[i], vals)
			}
		}
	}
}
