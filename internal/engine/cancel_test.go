package engine

import (
	"context"
	"sync/atomic"
	"testing"
)

// TestWithContextStopsScanEarly cancels mid-scan and checks the engine
// stopped visiting rows well before the end of the mention table.
func TestWithContextStopsScanEarly(t *testing.T) {
	db := testDB(t)
	n := int64(db.Mentions.Len())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e := New(db).WithWorkers(4).WithContext(ctx)

	var visited atomic.Int64
	e.CountMentions(func(row int) bool {
		if visited.Add(1) == 100 {
			cancel()
		}
		return true
	})
	got := visited.Load()
	if got >= n {
		t.Fatalf("scan visited all %d rows despite cancellation", n)
	}
	if ctx.Err() == nil {
		t.Fatal("context not cancelled")
	}
}

func TestWithContextNilBehavesNormally(t *testing.T) {
	db := testDB(t)
	e := New(db).WithWorkers(4)
	all := e.CountMentions(func(row int) bool { return true })
	if all != int64(db.Mentions.Len()) {
		t.Fatalf("uncancelled count %d, want %d", all, db.Mentions.Len())
	}
	// An already-cancelled context yields an (empty) partial aggregate.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got := e.WithContext(ctx).CountMentions(func(row int) bool { return true })
	if got != 0 {
		t.Fatalf("pre-cancelled count %d, want 0", got)
	}
}
