// Package convert implements the preprocessing pipeline of Section IV: it
// reads a raw GDELT dataset (master file list plus per-interval Events and
// Mentions chunk files), cleans and validates the data (Table II), and
// builds the in-memory columnar store — either directly, or by way of the
// indexed binary format in internal/binfmt.
package convert

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"path/filepath"

	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/store"
)

// Result is the outcome of a conversion.
type Result struct {
	DB    *store.DB
	Stats store.BuildStats
	// Chunks is the number of chunk files successfully read.
	Chunks int
}

// FromRawDir reads the raw dataset under dir and builds the store. The span
// of the archive is inferred from the master list entries. Defects found on
// the way are recorded in the returned DB's Report, reproducing the Table II
// accounting.
func FromRawDir(dir string) (*Result, error) {
	f, err := os.Open(filepath.Join(dir, gen.MasterFileName))
	if err != nil {
		return nil, fmt.Errorf("convert: opening master list: %w", err)
	}
	ml, err := gdelt.ReadMasterList(bufio.NewReader(f))
	f.Close()
	if err != nil {
		return nil, err
	}
	if len(ml.Entries) == 0 {
		return nil, fmt.Errorf("convert: master list has no entries")
	}

	first, intervals, err := datasetSpan(dir, ml)
	if err != nil {
		return nil, err
	}

	b, err := store.NewBuilder(first, int32(intervals))
	if err != nil {
		return nil, err
	}
	report := b.Report()
	for _, line := range ml.Malformed {
		report.Record(gdelt.DefectMalformedMasterEntry, line)
	}

	res := &Result{}
	for _, entry := range ml.Entries {
		data, err := os.ReadFile(filepath.Join(dir, entry.Path))
		if err != nil {
			report.Record(gdelt.DefectMissingArchive, entry.Path)
			continue
		}
		if int64(len(data)) != entry.Size || gdelt.Checksum32(data) != entry.Checksum {
			report.Record(gdelt.DefectChecksumMismatch, entry.Path)
			// Parse it anyway; the checksum defect is informational.
		}
		if err := ingestChunk(b, entry.Kind(), entry.Path, data); err != nil {
			return nil, err
		}
		res.Chunks++
	}

	db, stats, err := b.Finish()
	if err != nil {
		return nil, err
	}
	res.DB = db
	res.Stats = stats
	return res, nil
}

// datasetSpan determines the archive start and interval count: from the
// dataset.info sidecar when present, otherwise inferred from the master
// list (first chunk to the boundary after the last, using the chunk width
// implied by entry spacing).
func datasetSpan(dir string, ml *gdelt.MasterList) (gdelt.Timestamp, int64, error) {
	if data, err := os.ReadFile(filepath.Join(dir, gen.InfoFileName)); err == nil {
		var startStr string
		var intervals int64
		if _, err := fmt.Sscanf(string(data), "start %s\nintervals %d", &startStr, &intervals); err == nil {
			start, perr := gdelt.ParseTimestamp(startStr)
			if perr == nil && intervals > 0 {
				return start, intervals, nil
			}
		}
		return 0, 0, fmt.Errorf("convert: malformed %s", gen.InfoFileName)
	}
	first, err := ml.Entries[0].Interval()
	if err != nil {
		return 0, 0, err
	}
	last := first
	for _, e := range ml.Entries {
		iv, err := e.Interval()
		if err != nil {
			continue
		}
		if iv < first {
			first = iv
		}
		if iv > last {
			last = iv
		}
	}
	// The last chunk covers up to the next chunk boundary; derive the chunk
	// width from the spacing of entries (each chunk contributes two or
	// three files sharing one interval, so scan for the first distinct
	// timestamp).
	chunkIntervals := int64(gdelt.IntervalsPerDay)
	for _, e := range ml.Entries {
		iv, err := e.Interval()
		if err == nil && iv > first {
			chunkIntervals = iv.IntervalIndex() - first.IntervalIndex()
			break
		}
	}
	return first, last.IntervalIndex() - first.IntervalIndex() + chunkIntervals, nil
}

// ingestChunk parses one chunk file's rows into the builder. Unparseable
// rows are recorded as defects, not fatal errors — the paper's tool
// tolerates and tallies dirty rows.
func ingestChunk(b *store.Builder, kind, path string, data []byte) error {
	var fields [][]byte
	report := b.Report()
	for len(data) > 0 {
		var line []byte
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			line, data = data, nil
		}
		if len(line) == 0 {
			continue
		}
		fields = gdelt.SplitTabs(line, fields)
		switch kind {
		case "export":
			ev, err := gdelt.ParseEventFields(fields)
			if err != nil {
				report.Record(gdelt.DefectBadRow, fmt.Sprintf("%s: %v", path, err))
				continue
			}
			b.AddEvent(&ev)
		case "mentions":
			mn, err := gdelt.ParseMentionFields(fields)
			if err != nil {
				report.Record(gdelt.DefectBadRow, fmt.Sprintf("%s: %v", path, err))
				continue
			}
			b.AddMention(&mn)
		case "gkg":
			rec, err := gdelt.ParseGKGFields(fields)
			if err != nil {
				report.Record(gdelt.DefectBadRow, fmt.Sprintf("%s: %v", path, err))
				continue
			}
			b.AddGKG(&rec)
		default:
			return fmt.Errorf("convert: unknown chunk kind %q for %s", kind, path)
		}
	}
	return nil
}

// FromCorpus builds the store directly from an in-memory synthetic corpus,
// bypassing raw files. This is the fast path for tests and benchmarks; the
// resulting store is identical to converting the written files of the same
// corpus except for the deliberately withheld (missing-archive) chunks.
func FromCorpus(c *gen.Corpus) (*Result, error) {
	start := gdelt.Timestamp(c.World.Cfg.Start)
	intervals := int32(c.World.Days() * gdelt.IntervalsPerDay)
	b, err := store.NewBuilder(start, intervals)
	if err != nil {
		return nil, err
	}
	for i := range c.Events {
		ev := c.EventRecord(i)
		b.AddEvent(&ev)
	}
	for j := range c.Mentions {
		mn := c.MentionRecord(j)
		b.AddMention(&mn)
		if c.World.Cfg.GKG {
			rec := c.GKGRecord(j)
			b.AddGKG(&rec)
		}
	}
	db, stats, err := b.Finish()
	if err != nil {
		return nil, err
	}
	return &Result{DB: db, Stats: stats}, nil
}
