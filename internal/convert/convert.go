// Package convert implements the preprocessing pipeline of Section IV: it
// reads a raw GDELT dataset (master file list plus per-interval Events and
// Mentions chunk files), cleans and validates the data (Table II), and
// builds the in-memory columnar store — either directly, or by way of the
// indexed binary format in internal/binfmt.
package convert

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/ingest"
	"gdeltmine/internal/obs"
	"gdeltmine/internal/retry"
	"gdeltmine/internal/store"
)

// Conversion observability: chunk throughput and the quarantine pressure
// gauge the stream/convert pipeline reports (a rising fraction means the
// feed is degrading toward the MaxQuarantineFrac abort threshold).
var (
	mChunks = obs.Default.Counter("convert_chunks_total",
		"chunk files successfully ingested")
	mQuarantined = obs.Default.Counter("convert_quarantined_chunks_total",
		"chunk files quarantined (build continued without them)")
	mQuarantineFrac = obs.Default.Gauge("convert_quarantine_frac",
		"quarantined fraction of master-listed chunks in the last build")
)

// QuarantinedChunk records one master-listed chunk that could not be
// ingested: the build went on without it, tallying it here and in the
// Table II defect report.
type QuarantinedChunk struct {
	// Path is the chunk path from the master list.
	Path string
	// Class is the defect class the failure was filed under.
	Class gdelt.DefectClass
	// Reason is the underlying error text.
	Reason string
}

// Result is the outcome of a conversion.
type Result struct {
	DB    *store.DB
	Stats store.BuildStats
	// Chunks is the number of chunk files successfully read.
	Chunks int
	// Quarantined lists the chunks the build completed without.
	Quarantined []QuarantinedChunk
}

// QuarantineFrac is the fraction of master-listed chunks that quarantined.
func (r *Result) QuarantineFrac() float64 {
	total := r.Chunks + len(r.Quarantined)
	if total == 0 {
		return 0
	}
	return float64(len(r.Quarantined)) / float64(total)
}

// ErrTooManyQuarantined is wrapped by FromRawDirOpts when the quarantined
// chunk fraction exceeds Options.MaxQuarantineFrac: the dataset is too
// damaged for a partial build to be meaningful.
var ErrTooManyQuarantined = errors.New("convert: quarantined chunk fraction exceeds threshold")

// Options configures a resilient conversion.
type Options struct {
	// Source supplies chunk bytes. Nil means reading from the dataset
	// directory.
	Source ingest.Source
	// Retry is the transient-failure retry schedule. The zero value means
	// retry.DefaultPolicy().
	Retry retry.Policy
	// MaxQuarantineFrac aborts the build with ErrTooManyQuarantined when
	// more than this fraction of master-listed chunks quarantine. Zero
	// means 1.0: always degrade gracefully, never abort.
	MaxQuarantineFrac float64
}

func (o Options) withDefaults(dir string) Options {
	if o.Source == nil {
		o.Source = ingest.Dir(dir)
	}
	if o.Retry.MaxAttempts == 0 {
		o.Retry = retry.DefaultPolicy()
	}
	if o.MaxQuarantineFrac == 0 {
		o.MaxQuarantineFrac = 1
	}
	return o
}

// FromRawDir reads the raw dataset under dir and builds the store. The span
// of the archive is inferred from the master list entries. Defects found on
// the way are recorded in the returned DB's Report, reproducing the Table II
// accounting.
func FromRawDir(dir string) (*Result, error) {
	return FromRawDirOpts(context.Background(), dir, Options{})
}

// FromRawDirOpts is FromRawDir with failure handling under the caller's
// control: chunk reads go through opts.Source with transient errors retried
// per opts.Retry, permanent failures quarantine the chunk (the build
// completes partially, with the loss accounted in Result.Quarantined and
// the defect report), and a damage level above opts.MaxQuarantineFrac
// aborts with ErrTooManyQuarantined. Cancelling ctx stops the build between
// chunks.
func FromRawDirOpts(ctx context.Context, dir string, opts Options) (*Result, error) {
	opts = opts.withDefaults(dir)
	f, err := os.Open(filepath.Join(dir, gen.MasterFileName))
	if err != nil {
		return nil, fmt.Errorf("convert: opening master list: %w", err)
	}
	ml, err := gdelt.ReadMasterList(bufio.NewReader(f))
	f.Close()
	if err != nil {
		return nil, err
	}
	if len(ml.Entries) == 0 {
		return nil, fmt.Errorf("convert: master list has no entries")
	}

	first, intervals, err := datasetSpan(dir, ml)
	if err != nil {
		return nil, err
	}

	b, err := store.NewBuilder(first, int32(intervals))
	if err != nil {
		return nil, err
	}
	report := b.Report()
	for _, line := range ml.Malformed {
		report.Record(gdelt.DefectMalformedMasterEntry, line)
	}

	reader := &ingest.Reader{Src: opts.Source, Retry: opts.Retry}
	res := &Result{}
	quarantine := func(entry gdelt.MasterEntry, class gdelt.DefectClass, err error) {
		report.Record(class, entry.Path)
		res.Quarantined = append(res.Quarantined, QuarantinedChunk{Path: entry.Path, Class: class, Reason: err.Error()})
		mQuarantined.Inc()
	}
	seen := make(map[string]bool, len(ml.Entries))
	for _, entry := range ml.Entries {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if seen[entry.Path] {
			// A path listed twice would double-ingest its rows; keep the
			// first occurrence and file the repeat as a malformed entry.
			report.Record(gdelt.DefectMalformedMasterEntry, "duplicate master entry: "+entry.Path)
			continue
		}
		seen[entry.Path] = true
		data, err := reader.Read(ctx, entry)
		var ce *ingest.ChecksumError
		switch {
		case errors.As(err, &ce):
			report.Record(gdelt.DefectChecksumMismatch, entry.Path)
			// Parse it anyway; the checksum defect is informational and
			// covers truncated and corrupted deliveries too.
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			return nil, err
		case err != nil:
			// Permanently absent, unreadable, or transient past the retry
			// budget: quarantine and degrade.
			quarantine(entry, gdelt.DefectMissingArchive, err)
			continue
		}
		if err := ingestChunk(b, entry.Kind(), entry.Path, data); err != nil {
			quarantine(entry, gdelt.DefectBadRow, err)
			continue
		}
		res.Chunks++
		mChunks.Inc()
	}
	mQuarantineFrac.Set(res.QuarantineFrac())
	if frac := res.QuarantineFrac(); frac > opts.MaxQuarantineFrac {
		return nil, fmt.Errorf("%w: %d of %d chunks (%.1f%% > %.1f%%)",
			ErrTooManyQuarantined, len(res.Quarantined), res.Chunks+len(res.Quarantined),
			frac*100, opts.MaxQuarantineFrac*100)
	}

	db, stats, err := b.Finish()
	if err != nil {
		return nil, err
	}
	res.DB = db
	res.Stats = stats
	return res, nil
}

// datasetSpan determines the archive start and interval count: from the
// dataset.info sidecar when present, otherwise inferred from the master
// list (first chunk to the boundary after the last, using the chunk width
// implied by entry spacing).
func datasetSpan(dir string, ml *gdelt.MasterList) (gdelt.Timestamp, int64, error) {
	if data, err := os.ReadFile(filepath.Join(dir, gen.InfoFileName)); err == nil {
		var startStr string
		var intervals int64
		if _, err := fmt.Sscanf(string(data), "start %s\nintervals %d", &startStr, &intervals); err == nil {
			start, perr := gdelt.ParseTimestamp(startStr)
			if perr == nil && intervals > 0 {
				return start, intervals, nil
			}
		}
		return 0, 0, fmt.Errorf("convert: malformed %s", gen.InfoFileName)
	}
	first, err := ml.Entries[0].Interval()
	if err != nil {
		return 0, 0, err
	}
	last := first
	for _, e := range ml.Entries {
		iv, err := e.Interval()
		if err != nil {
			continue
		}
		if iv < first {
			first = iv
		}
		if iv > last {
			last = iv
		}
	}
	// The last chunk covers up to the next chunk boundary; derive the chunk
	// width from the spacing of entries (each chunk contributes two or
	// three files sharing one interval, so scan for the first distinct
	// timestamp).
	chunkIntervals := int64(gdelt.IntervalsPerDay)
	for _, e := range ml.Entries {
		iv, err := e.Interval()
		if err == nil && iv > first {
			chunkIntervals = iv.IntervalIndex() - first.IntervalIndex()
			break
		}
	}
	return first, last.IntervalIndex() - first.IntervalIndex() + chunkIntervals, nil
}

// ingestChunk parses one chunk file's rows into the builder. Unparseable
// rows are recorded as defects, not fatal errors — the paper's tool
// tolerates and tallies dirty rows.
func ingestChunk(b *store.Builder, kind, path string, data []byte) error {
	var fields [][]byte
	report := b.Report()
	for len(data) > 0 {
		var line []byte
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			line, data = data, nil
		}
		if len(line) == 0 {
			continue
		}
		fields = gdelt.SplitTabs(line, fields)
		switch kind {
		case "export":
			ev, err := gdelt.ParseEventFields(fields)
			if err != nil {
				report.Record(gdelt.DefectBadRow, fmt.Sprintf("%s: %v", path, err))
				continue
			}
			b.AddEvent(&ev)
		case "mentions":
			mn, err := gdelt.ParseMentionFields(fields)
			if err != nil {
				report.Record(gdelt.DefectBadRow, fmt.Sprintf("%s: %v", path, err))
				continue
			}
			b.AddMention(&mn)
		case "gkg":
			rec, err := gdelt.ParseGKGFields(fields)
			if err != nil {
				report.Record(gdelt.DefectBadRow, fmt.Sprintf("%s: %v", path, err))
				continue
			}
			b.AddGKG(&rec)
		default:
			return fmt.Errorf("convert: unknown chunk kind %q for %s", kind, path)
		}
	}
	return nil
}

// FromCorpus builds the store directly from an in-memory synthetic corpus,
// bypassing raw files. This is the fast path for tests and benchmarks; the
// resulting store is identical to converting the written files of the same
// corpus except for the deliberately withheld (missing-archive) chunks.
func FromCorpus(c *gen.Corpus) (*Result, error) {
	start := gdelt.Timestamp(c.World.Cfg.Start)
	intervals := int32(c.World.Days() * gdelt.IntervalsPerDay)
	b, err := store.NewBuilder(start, intervals)
	if err != nil {
		return nil, err
	}
	for i := range c.Events {
		ev := c.EventRecord(i)
		b.AddEvent(&ev)
	}
	for j := range c.Mentions {
		mn := c.MentionRecord(j)
		b.AddMention(&mn)
		if c.World.Cfg.GKG {
			rec := c.GKGRecord(j)
			b.AddGKG(&rec)
		}
	}
	db, stats, err := b.Finish()
	if err != nil {
		return nil, err
	}
	return &Result{DB: db, Stats: stats}, nil
}
