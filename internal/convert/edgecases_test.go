package convert

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/gen"
)

// TestEmptyChunkFile: a master-listed chunk of zero bytes is a valid
// (if vacuous) delivery — no defects, no rows, no crash.
func TestEmptyChunkFile(t *testing.T) {
	dir := t.TempDir()
	name := "20150218000000.export.csv"
	if err := os.WriteFile(filepath.Join(dir, name), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	master := gdelt.FormatMasterEntry(gdelt.MasterEntry{Size: 0, Checksum: gdelt.Checksum32(nil), Path: name}) + "\n"
	if err := os.WriteFile(filepath.Join(dir, gen.MasterFileName), []byte(master), 0o644); err != nil {
		t.Fatal(err)
	}
	info := "start 20150218000000\nintervals 96\n"
	if err := os.WriteFile(filepath.Join(dir, gen.InfoFileName), []byte(info), 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := FromRawDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chunks != 1 || len(res.Quarantined) != 0 {
		t.Fatalf("chunks %d quarantined %d", res.Chunks, len(res.Quarantined))
	}
	if res.DB.Events.Len() != 0 || res.DB.Report.Total() != 0 {
		t.Fatalf("events %d defects %d want 0", res.DB.Events.Len(), res.DB.Report.Total())
	}
}

// TestTruncatedFinalLine: a chunk whose last row lacks the trailing
// newline must still contribute every row.
func TestTruncatedFinalLine(t *testing.T) {
	dir, _ := cleanDataset(t)
	baseline, err := FromRawDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ml := readMaster(t, dir)
	// Strip the trailing newline from one mentions chunk and keep the
	// master list consistent with the new bytes.
	var victim int = -1
	for i, e := range ml.Entries {
		if e.Kind() == "mentions" && e.Size > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatal("no nonempty mentions chunk")
	}
	path := filepath.Join(dir, ml.Entries[victim].Path)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data = bytes.TrimSuffix(data, []byte("\n"))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	ml.Entries[victim].Size = int64(len(data))
	ml.Entries[victim].Checksum = gdelt.Checksum32(data)
	f, err := os.Create(filepath.Join(dir, gen.MasterFileName))
	if err != nil {
		t.Fatal(err)
	}
	if err := gdelt.WriteMasterList(f, ml); err != nil {
		t.Fatal(err)
	}
	f.Close()

	res, err := FromRawDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.DB.Mentions.Len() != baseline.DB.Mentions.Len() {
		t.Fatalf("mentions %d want %d: the final unterminated row was lost",
			res.DB.Mentions.Len(), baseline.DB.Mentions.Len())
	}
	if got := res.DB.Report.Counts[gdelt.DefectChecksumMismatch]; got != 0 {
		t.Fatalf("checksum defects %d want 0", got)
	}
}

// TestDuplicateMasterEntries: a path listed twice is ingested once and the
// repeat is filed as a malformed master entry — no double counting.
func TestDuplicateMasterEntries(t *testing.T) {
	dir, _ := cleanDataset(t)
	baseline, err := FromRawDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	ml := readMaster(t, dir)
	dup := gdelt.FormatMasterEntry(ml.Entries[0]) + "\n" + gdelt.FormatMasterEntry(ml.Entries[1]) + "\n"
	f, err := os.OpenFile(filepath.Join(dir, gen.MasterFileName), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(dup); err != nil {
		t.Fatal(err)
	}
	f.Close()

	res, err := FromRawDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.DB.Mentions.Len() != baseline.DB.Mentions.Len() || res.DB.Events.Len() != baseline.DB.Events.Len() {
		t.Fatalf("rows changed: %d/%d mentions, %d/%d events",
			res.DB.Mentions.Len(), baseline.DB.Mentions.Len(), res.DB.Events.Len(), baseline.DB.Events.Len())
	}
	if got := res.DB.Report.Counts[gdelt.DefectMalformedMasterEntry]; got != 2 {
		t.Fatalf("malformed-master count %d want 2", got)
	}
	found := false
	for _, ex := range res.DB.Report.Examples[gdelt.DefectMalformedMasterEntry] {
		if strings.Contains(ex, "duplicate master entry") {
			found = true
		}
	}
	if !found {
		t.Fatal("duplicate entries should be identifiable in the defect examples")
	}
}

// TestMasterEntryIsDirectory: a master entry whose path is a directory is
// a permanent read failure — quarantined, never fatal.
func TestMasterEntryIsDirectory(t *testing.T) {
	dir, _ := cleanDataset(t)
	baseline, err := FromRawDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	name := "20150301000000.export.csv"
	if err := os.Mkdir(filepath.Join(dir, name), 0o755); err != nil {
		t.Fatal(err)
	}
	entry := gdelt.FormatMasterEntry(gdelt.MasterEntry{Size: 0, Checksum: gdelt.Checksum32(nil), Path: name}) + "\n"
	f, err := os.OpenFile(filepath.Join(dir, gen.MasterFileName), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(entry); err != nil {
		t.Fatal(err)
	}
	f.Close()

	res, err := FromRawDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 1 || res.Quarantined[0].Path != name {
		t.Fatalf("quarantined %+v", res.Quarantined)
	}
	if res.Quarantined[0].Class != gdelt.DefectMissingArchive {
		t.Fatalf("class %v", res.Quarantined[0].Class)
	}
	if res.DB.Mentions.Len() != baseline.DB.Mentions.Len() {
		t.Fatal("healthy chunks must be unaffected")
	}
}
