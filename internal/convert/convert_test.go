package convert

import (
	"os"
	"path/filepath"
	"testing"

	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/gen"
)

func generateSmall(t testing.TB) *gen.Corpus {
	t.Helper()
	c, err := gen.Generate(gen.Small())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFromCorpus(t *testing.T) {
	c := generateSmall(t)
	res, err := FromCorpus(c)
	if err != nil {
		t.Fatal(err)
	}
	db := res.DB
	if db.Events.Len() != len(c.Events) {
		t.Fatalf("events %d vs %d", db.Events.Len(), len(c.Events))
	}
	if db.Mentions.Len() != len(c.Mentions) {
		t.Fatalf("mentions %d vs %d", db.Mentions.Len(), len(c.Mentions))
	}
	if res.Stats.DanglingMentions != 0 || res.Stats.DroppedMentions != 0 || res.Stats.DuplicateEvents != 0 {
		t.Fatalf("unexpected drops: %+v", res.Stats)
	}
	// The corpus defects surface in the report.
	cfg := c.World.Cfg
	if got := db.Report.Counts[gdelt.DefectMissingSourceURL]; got != int64(cfg.DefectMissingSourceURL) {
		t.Fatalf("missing url %d want %d", got, cfg.DefectMissingSourceURL)
	}
	if got := db.Report.Counts[gdelt.DefectFutureEventDate]; got != int64(cfg.DefectFutureEventDate) {
		t.Fatalf("future date %d want %d", got, cfg.DefectFutureEventDate)
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFromRawDirReproducesTableII(t *testing.T) {
	c := generateSmall(t)
	dir := t.TempDir()
	if _, err := gen.WriteRaw(c, dir); err != nil {
		t.Fatal(err)
	}
	res, err := FromRawDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	db := res.DB
	cfg := c.World.Cfg
	r := db.Report

	// Table II ground truth: all four defect classes at their configured
	// counts. Missing archives may hide the missing-URL/future-date victim
	// events, so those two are upper-bounded by the configured counts.
	if got := r.Counts[gdelt.DefectMalformedMasterEntry]; got != int64(cfg.DefectMalformedMaster) {
		t.Fatalf("malformed master %d want %d", got, cfg.DefectMalformedMaster)
	}
	if got := r.Counts[gdelt.DefectMissingArchive]; got != int64(cfg.DefectMissingArchives) {
		t.Fatalf("missing archives %d want %d", got, cfg.DefectMissingArchives)
	}
	if got := r.Counts[gdelt.DefectMissingSourceURL]; got > int64(cfg.DefectMissingSourceURL) {
		t.Fatalf("missing url %d want <= %d", got, cfg.DefectMissingSourceURL)
	}
	if got := r.Counts[gdelt.DefectFutureEventDate]; got > int64(cfg.DefectFutureEventDate) {
		t.Fatalf("future date %d want <= %d", got, cfg.DefectFutureEventDate)
	}
	if r.Counts[gdelt.DefectChecksumMismatch] != 0 {
		t.Fatalf("checksum mismatches %d", r.Counts[gdelt.DefectChecksumMismatch])
	}

	// Events/mentions: everything except what lived in the withheld chunks.
	if db.Events.Len() > len(c.Events) || db.Events.Len() < len(c.Events)*8/10 {
		t.Fatalf("events %d vs corpus %d", db.Events.Len(), len(c.Events))
	}
	if db.Mentions.Len() > len(c.Mentions) || db.Mentions.Len() < len(c.Mentions)*8/10 {
		t.Fatalf("mentions %d vs corpus %d", db.Mentions.Len(), len(c.Mentions))
	}
	if err := db.Validate(); err != nil {
		t.Fatal(err)
	}
	// Meta must match the corpus exactly thanks to the sidecar.
	if db.Meta.Start != gdelt.Timestamp(cfg.Start) {
		t.Fatalf("start %v", db.Meta.Start)
	}
	if int(db.Meta.Intervals) != c.World.Days()*gdelt.IntervalsPerDay {
		t.Fatalf("intervals %d", db.Meta.Intervals)
	}
	if db.NumQuarters() != 20 {
		t.Fatalf("quarters %d want 20", db.NumQuarters())
	}
}

func TestRawAndCorpusAgreeWithoutDefects(t *testing.T) {
	cfg := gen.Small()
	cfg.DefectMalformedMaster = 0
	cfg.DefectMissingArchives = 0
	c, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := gen.WriteRaw(c, dir); err != nil {
		t.Fatal(err)
	}
	raw, err := FromRawDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := FromCorpus(c)
	if err != nil {
		t.Fatal(err)
	}
	if raw.DB.Events.Len() != direct.DB.Events.Len() {
		t.Fatalf("events %d vs %d", raw.DB.Events.Len(), direct.DB.Events.Len())
	}
	if raw.DB.Mentions.Len() != direct.DB.Mentions.Len() {
		t.Fatalf("mentions %d vs %d", raw.DB.Mentions.Len(), direct.DB.Mentions.Len())
	}
	// Same per-event article counts.
	for i := range raw.DB.Events.ID {
		if raw.DB.Events.ID[i] != direct.DB.Events.ID[i] ||
			raw.DB.Events.NumArticles[i] != direct.DB.Events.NumArticles[i] {
			t.Fatalf("event %d differs: id %d/%d articles %d/%d", i,
				raw.DB.Events.ID[i], direct.DB.Events.ID[i],
				raw.DB.Events.NumArticles[i], direct.DB.Events.NumArticles[i])
		}
	}
	// Same delay distribution (order may differ within an interval).
	var sumRaw, sumDirect int64
	for _, d := range raw.DB.Mentions.Delay {
		sumRaw += int64(d)
	}
	for _, d := range direct.DB.Mentions.Delay {
		sumDirect += int64(d)
	}
	if sumRaw != sumDirect {
		t.Fatalf("delay sums differ: %d vs %d", sumRaw, sumDirect)
	}
}

func TestFromRawDirMissingMaster(t *testing.T) {
	if _, err := FromRawDir(t.TempDir()); err == nil {
		t.Fatal("missing master list should fail")
	}
}

func TestFromRawDirEmptyMaster(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, gen.MasterFileName), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := FromRawDir(dir); err == nil {
		t.Fatal("empty master list should fail")
	}
}

func TestFromRawDirBadInfoSidecar(t *testing.T) {
	c := generateSmall(t)
	dir := t.TempDir()
	if _, err := gen.WriteRaw(c, dir); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, gen.InfoFileName), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := FromRawDir(dir); err == nil {
		t.Fatal("malformed sidecar should fail")
	}
}

func TestFromRawDirInferredSpan(t *testing.T) {
	c := generateSmall(t)
	dir := t.TempDir()
	if _, err := gen.WriteRaw(c, dir); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, gen.InfoFileName)); err != nil {
		t.Fatal(err)
	}
	res, err := FromRawDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Without the sidecar the span is inferred from chunk spacing; it must
	// cover at least the real archive.
	if res.DB.Meta.Start != gdelt.Timestamp(c.World.Cfg.Start) {
		t.Fatalf("inferred start %v", res.DB.Meta.Start)
	}
	if int(res.DB.Meta.Intervals) < c.World.Days()*gdelt.IntervalsPerDay {
		t.Fatalf("inferred span too small: %d", res.DB.Meta.Intervals)
	}
}

func TestFromRawDirDetectsTamperedChunk(t *testing.T) {
	c := generateSmall(t)
	dir := t.TempDir()
	res, err := gen.WriteRaw(c, dir)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one written chunk file by appending a byte.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var victim string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".csv" {
			victim = filepath.Join(dir, e.Name())
			break
		}
	}
	f, err := os.OpenFile(victim, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("\n")
	f.Close()
	conv, err := FromRawDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if conv.DB.Report.Counts[gdelt.DefectChecksumMismatch] != 1 {
		t.Fatalf("checksum mismatch count %d", conv.DB.Report.Counts[gdelt.DefectChecksumMismatch])
	}
	_ = res
}
