package convert

import (
	"bufio"
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"gdeltmine/internal/faults"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/ingest"
	"gdeltmine/internal/retry"
)

// cleanDataset writes a Small corpus with gen's own defect injection off,
// so every defect the conversion reports was injected by this test.
func cleanDataset(t testing.TB) (dir string, c *gen.Corpus) {
	t.Helper()
	cfg := gen.Small()
	cfg.DefectMalformedMaster = 0
	cfg.DefectMissingArchives = 0
	c, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir = t.TempDir()
	if _, err := gen.WriteRaw(c, dir); err != nil {
		t.Fatal(err)
	}
	return dir, c
}

func readMaster(t testing.TB, dir string) *gdelt.MasterList {
	t.Helper()
	f, err := os.Open(filepath.Join(dir, gen.MasterFileName))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ml, err := gdelt.ReadMasterList(bufio.NewReader(f))
	if err != nil {
		t.Fatal(err)
	}
	return ml
}

func instantRetry(attempts int) retry.Policy {
	return retry.Policy{MaxAttempts: attempts, Seed: 1,
		Sleep: func(ctx context.Context, d time.Duration) error { return ctx.Err() }}
}

// TestFromRawDirOptsUnderInjectedFaults is the end-to-end fault drill:
// a dataset is converted through an injector that makes one chunk vanish,
// one truncate, one corrupt, one fail transiently and one arrive late.
// Transient and delayed chunks must be retried to success, the missing one
// must quarantine with the build completing partially, and the damaged
// ones must land in the Table II checksum tally.
func TestFromRawDirOptsUnderInjectedFaults(t *testing.T) {
	dir, _ := cleanDataset(t)
	ml := readMaster(t, dir)
	if len(ml.Entries) < 5 {
		t.Fatalf("need at least 5 chunks, have %d", len(ml.Entries))
	}
	plan := map[string]faults.Fault{
		ml.Entries[0].Path: faults.Transient,
		ml.Entries[1].Path: faults.Missing,
		ml.Entries[2].Path: faults.Truncated,
		ml.Entries[3].Path: faults.Corrupted,
		ml.Entries[4].Path: faults.Delayed,
	}
	inj := faults.New(ingest.Dir(dir), faults.Config{Seed: 7, Plan: plan, FailCount: 2})
	res, err := FromRawDirOpts(context.Background(), dir, Options{
		Source: inj,
		Retry:  instantRetry(4), // budget covers FailCount=2
	})
	if err != nil {
		t.Fatalf("build must degrade gracefully, got %v", err)
	}
	report := res.DB.Report

	// Exactly the missing chunk quarantined; everything else made it in.
	if len(res.Quarantined) != 1 {
		t.Fatalf("quarantined %+v want exactly the missing chunk", res.Quarantined)
	}
	q := res.Quarantined[0]
	if q.Path != ml.Entries[1].Path || q.Class != gdelt.DefectMissingArchive {
		t.Fatalf("quarantine %+v", q)
	}
	if res.Chunks != len(ml.Entries)-1 {
		t.Fatalf("chunks %d want %d", res.Chunks, len(ml.Entries)-1)
	}
	if got := report.Counts[gdelt.DefectMissingArchive]; got != 1 {
		t.Fatalf("missing-archive count %d want 1", got)
	}

	// Transient and delayed errors were retried to success: the injector
	// saw its failures consumed, and neither chunk quarantined.
	stats := inj.Stats()
	if stats[faults.Transient] != 2 || stats[faults.Delayed] != 2 {
		t.Fatalf("injector stats %v: want both flaky chunks to fail twice then heal", stats)
	}

	// Truncation and corruption land in the checksum tally, and their
	// surviving rows were still parsed.
	if got := report.Counts[gdelt.DefectChecksumMismatch]; got != 2 {
		t.Fatalf("checksum mismatches %d want 2 (truncated + corrupted)", got)
	}
	if res.DB.Mentions.Len() == 0 || res.DB.Events.Len() == 0 {
		t.Fatal("partial build is empty")
	}
	if err := res.DB.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestFromRawDirOptsRetryBudgetExhaustion: a chunk that stays transient
// past the retry budget quarantines instead of aborting the build.
func TestFromRawDirOptsRetryBudgetExhaustion(t *testing.T) {
	dir, _ := cleanDataset(t)
	ml := readMaster(t, dir)
	inj := faults.New(ingest.Dir(dir), faults.Config{
		Plan:      map[string]faults.Fault{ml.Entries[0].Path: faults.Transient},
		FailCount: 100, // never heals within any sane budget
	})
	res, err := FromRawDirOpts(context.Background(), dir, Options{Source: inj, Retry: instantRetry(3)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != 1 || res.Quarantined[0].Path != ml.Entries[0].Path {
		t.Fatalf("quarantined %+v", res.Quarantined)
	}
}

func TestFromRawDirOptsQuarantineThreshold(t *testing.T) {
	dir, _ := cleanDataset(t)
	ml := readMaster(t, dir)
	// Vanish half the archive, then ask for at most 10% damage.
	plan := make(map[string]faults.Fault)
	for i, e := range ml.Entries {
		if i%2 == 0 {
			plan[e.Path] = faults.Missing
		}
	}
	inj := faults.New(ingest.Dir(dir), faults.Config{Plan: plan})
	_, err := FromRawDirOpts(context.Background(), dir, Options{
		Source: inj, Retry: instantRetry(1), MaxQuarantineFrac: 0.1,
	})
	if !errors.Is(err, ErrTooManyQuarantined) {
		t.Fatalf("err %v want ErrTooManyQuarantined", err)
	}
	// The same damage under the default threshold degrades gracefully.
	res, err := FromRawDirOpts(context.Background(), dir,
		Options{Source: faults.New(ingest.Dir(dir), faults.Config{Plan: plan}), Retry: instantRetry(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Quarantined) != len(plan) {
		t.Fatalf("quarantined %d want %d", len(res.Quarantined), len(plan))
	}
	if res.QuarantineFrac() < 0.4 || res.QuarantineFrac() > 0.6 {
		t.Fatalf("frac %v", res.QuarantineFrac())
	}
}

func TestFromRawDirOptsContextCancel(t *testing.T) {
	dir, _ := cleanDataset(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FromRawDirOpts(ctx, dir, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v want Canceled", err)
	}
}
