package convert

import (
	"testing"

	"gdeltmine/internal/gen"
)

func TestGKGThroughRawPipeline(t *testing.T) {
	cfg := gen.Small()
	cfg.DefectMissingArchives = 0
	c, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	res, err := gen.WriteRaw(c, dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.FilesPerChunk != 3 {
		t.Fatalf("files per chunk %d want 3 with GKG", res.FilesPerChunk)
	}
	conv, err := FromRawDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	db := conv.DB
	if db.GKG == nil {
		t.Fatal("GKG not ingested")
	}
	// One GKG record per mention.
	if db.GKG.Table.Len() != db.Mentions.Len() {
		t.Fatalf("gkg rows %d vs mentions %d", db.GKG.Table.Len(), db.Mentions.Len())
	}
	direct, err := FromCorpus(c)
	if err != nil {
		t.Fatal(err)
	}
	if db.GKG.Table.Len() != direct.DB.GKG.Table.Len() {
		t.Fatal("raw and direct GKG row counts differ")
	}
	if db.GKG.Themes.Len() != direct.DB.GKG.Themes.Len() {
		t.Fatal("theme dictionaries differ")
	}
	// Total theme annotations agree.
	if len(db.GKG.Table.ThemeIDs) != len(direct.DB.GKG.Table.ThemeIDs) {
		t.Fatal("theme annotation totals differ")
	}
}

func TestGKGDisabled(t *testing.T) {
	cfg := gen.Small()
	cfg.GKG = false
	c, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	res, err := gen.WriteRaw(c, dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.FilesPerChunk != 2 {
		t.Fatalf("files per chunk %d want 2 without GKG", res.FilesPerChunk)
	}
	conv, err := FromRawDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if conv.DB.GKG != nil {
		t.Fatal("GKG present despite being disabled")
	}
}
