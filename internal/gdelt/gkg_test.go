package gdelt

import (
	"bytes"
	"testing"
)

func sampleGKG() GKGRecord {
	return GKGRecord{
		RecordID:      "20160612083000-42",
		Date:          20160612083000,
		SourceName:    "dailyecho.co.uk",
		DocID:         "https://dailyecho.co.uk/news/1",
		Themes:        []string{"TERROR", "KILL", "WB_2024_SECURITY"},
		Persons:       []string{"john smith", "jane doe"},
		Organizations: []string{"metropolitan police"},
		Tone:          -7.25,
		Translated:    true,
	}
}

func TestGKGRowRoundTrip(t *testing.T) {
	r := sampleGKG()
	row := AppendGKGRow(nil, &r)
	if n := bytes.Count(row, []byte{'\t'}); n != len(GKGColumns)-1 {
		t.Fatalf("gkg row has %d tabs, want %d", n, len(GKGColumns)-1)
	}
	got, err := ParseGKGFields(SplitTabs(row, nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.RecordID != r.RecordID || got.Date != r.Date ||
		got.SourceName != r.SourceName || got.DocID != r.DocID {
		t.Fatalf("identity: %+v", got)
	}
	if len(got.Themes) != 3 || got.Themes[0] != "TERROR" || got.Themes[2] != "WB_2024_SECURITY" {
		t.Fatalf("themes %v", got.Themes)
	}
	if len(got.Persons) != 2 || got.Persons[1] != "jane doe" {
		t.Fatalf("persons %v", got.Persons)
	}
	if len(got.Organizations) != 1 {
		t.Fatalf("orgs %v", got.Organizations)
	}
	if got.Tone != -7.25 {
		t.Fatalf("tone %v", got.Tone)
	}
	if !got.Translated {
		t.Fatal("translation flag lost")
	}
}

func TestGKGEmptyAnnotations(t *testing.T) {
	r := sampleGKG()
	r.Themes = nil
	r.Persons = nil
	r.Organizations = nil
	r.Translated = false
	got, err := ParseGKGFields(SplitTabs(AppendGKGRow(nil, &r), nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.Themes != nil || got.Persons != nil || got.Organizations != nil {
		t.Fatalf("expected empty annotations: %+v", got)
	}
	if got.Translated {
		t.Fatal("translation flag invented")
	}
}

func TestGKGParseErrors(t *testing.T) {
	if _, err := ParseGKGFields(SplitTabs([]byte("a\tb"), nil)); err == nil {
		t.Fatal("short row accepted")
	}
	r := sampleGKG()
	row := AppendGKGRow(nil, &r)
	fields := SplitTabs(row, nil)
	fields[GkgColDate] = []byte("yesterday")
	if _, err := ParseGKGFields(fields); err == nil {
		t.Fatal("bad date accepted")
	}
	fields = SplitTabs(row, nil)
	fields[GkgColRecordID] = nil
	if _, err := ParseGKGFields(fields); err == nil {
		t.Fatal("empty record id accepted")
	}
	fields = SplitTabs(row, nil)
	fields[GkgColTone] = []byte("abc,0")
	if _, err := ParseGKGFields(fields); err == nil {
		t.Fatal("bad tone accepted")
	}
}

func TestSplitSemis(t *testing.T) {
	if got := splitSemis(nil); got != nil {
		t.Fatal("nil input")
	}
	if got := splitSemis([]byte(";;")); got != nil {
		t.Fatalf("empties: %v", got)
	}
	got := splitSemis([]byte("A;;B;"))
	if len(got) != 2 || got[0] != "A" || got[1] != "B" {
		t.Fatalf("split %v", got)
	}
}
