package gdelt

import (
	"fmt"
	"sort"
	"strings"
)

// DefectClass enumerates the dataset problems of Table II, plus the parse
// failure classes the conversion pipeline can encounter.
type DefectClass int

const (
	// DefectMalformedMasterEntry counts master list lines that do not parse.
	DefectMalformedMasterEntry DefectClass = iota
	// DefectMissingArchive counts master entries whose chunk file is absent
	// or unreadable.
	DefectMissingArchive
	// DefectMissingSourceURL counts events whose SourceURL field is empty.
	DefectMissingSourceURL
	// DefectFutureEventDate counts events whose recorded date lies after the
	// publication time of the first article mentioning them.
	DefectFutureEventDate
	// DefectBadRow counts rows that fail to parse at all.
	DefectBadRow
	// DefectChecksumMismatch counts chunk files whose contents do not match
	// the master list checksum.
	DefectChecksumMismatch
	numDefectClasses
)

var defectNames = [numDefectClasses]string{
	"Missformatted dataset master list entries",
	"Missing archives for dataset chunks",
	"Missing event source URL",
	"Recorded event date is in future compared to the recorded first article publication date",
	"Unparseable table rows",
	"Chunk checksum mismatches",
}

// String returns the Table II row label for the defect class.
func (c DefectClass) String() string {
	if c < 0 || c >= numDefectClasses {
		return fmt.Sprintf("DefectClass(%d)", int(c))
	}
	return defectNames[c]
}

// ValidationReport tallies defects found while converting a dataset, with a
// bounded number of retained examples per class for diagnostics.
type ValidationReport struct {
	Counts   [numDefectClasses]int64
	Examples [numDefectClasses][]string
	// MaxExamples bounds retained examples per class; zero means 5.
	MaxExamples int
}

// Record tallies one defect with an optional example description.
func (r *ValidationReport) Record(c DefectClass, example string) {
	if c < 0 || c >= numDefectClasses {
		return
	}
	r.Counts[c]++
	maxEx := r.MaxExamples
	if maxEx == 0 {
		maxEx = 5
	}
	if example != "" && len(r.Examples[c]) < maxEx {
		r.Examples[c] = append(r.Examples[c], example)
	}
}

// Merge folds another report into r.
func (r *ValidationReport) Merge(o *ValidationReport) {
	maxEx := r.MaxExamples
	if maxEx == 0 {
		maxEx = 5
	}
	for c := DefectClass(0); c < numDefectClasses; c++ {
		r.Counts[c] += o.Counts[c]
		for _, ex := range o.Examples[c] {
			if len(r.Examples[c]) < maxEx {
				r.Examples[c] = append(r.Examples[c], ex)
			}
		}
	}
}

// Total returns the total number of recorded defects.
func (r *ValidationReport) Total() int64 {
	var t int64
	for _, c := range r.Counts {
		t += c
	}
	return t
}

// Classes returns the defect classes with nonzero counts, in class order.
func (r *ValidationReport) Classes() []DefectClass {
	var out []DefectClass
	for c := DefectClass(0); c < numDefectClasses; c++ {
		if r.Counts[c] > 0 {
			out = append(out, c)
		}
	}
	return out
}

// String renders the report in the layout of Table II.
func (r *ValidationReport) String() string {
	var b strings.Builder
	b.WriteString("Problems found during the dataset analysis\n")
	for c := DefectClass(0); c < numDefectClasses; c++ {
		fmt.Fprintf(&b, "  %-90s %d\n", c.String(), r.Counts[c])
	}
	return b.String()
}

// ValidateEvent checks a parsed event against the Table II taxonomy that is
// visible at the single-event level and records findings. firstMention is
// the earliest mention timestamp for the event, or zero when unknown.
func ValidateEvent(r *ValidationReport, ev *Event, firstMention Timestamp) {
	if ev.SourceURL == "" {
		r.Record(DefectMissingSourceURL, fmt.Sprintf("event %d", ev.GlobalEventID))
	}
	if firstMention != 0 && ev.Day > firstMention.YYYYMMDD() {
		r.Record(DefectFutureEventDate,
			fmt.Sprintf("event %d: day %d after first mention %s", ev.GlobalEventID, ev.Day, firstMention))
	}
}

// SortedExampleClasses returns classes that retained examples, sorted.
func (r *ValidationReport) SortedExampleClasses() []DefectClass {
	var out []DefectClass
	for c := DefectClass(0); c < numDefectClasses; c++ {
		if len(r.Examples[c]) > 0 {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
