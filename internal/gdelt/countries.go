package gdelt

import "strings"

// Country describes one country in the analysis: its FIPS 10-4 code (the
// geocoding vocabulary GDELT uses for ActionGeo_CountryCode), a display
// name, and the top-level domain used to attribute news sources to
// countries, the heuristic of Section VI-C.
type Country struct {
	FIPS string
	Name string
	TLD  string // source-attribution suffix, e.g. "co.uk"
}

// Countries is the country table, ordered so the ten countries the paper's
// cross-reporting tables feature come first: the top publishing countries
// (Table V) and top reported countries (Table VI) are all within the first
// fourteen entries, and the remainder extends coverage to the 50-country
// matrices of Figure 8.
var Countries = []Country{
	{"UK", "United Kingdom", "co.uk"},
	{"US", "United States", "com"},
	{"AS", "Australia", "com.au"},
	{"IN", "India", "in"},
	{"IT", "Italy", "it"},
	{"CA", "Canada", "ca"},
	{"SF", "South Africa", "co.za"},
	{"NI", "Nigeria", "ng"},
	{"BG", "Bangladesh", "com.bd"},
	{"RP", "Philippines", "ph"},
	{"CH", "China", "cn"},
	{"RS", "Russia", "ru"},
	{"IS", "Israel", "co.il"},
	{"PK", "Pakistan", "pk"},
	{"GM", "Germany", "de"},
	{"FR", "France", "fr"},
	{"SP", "Spain", "es"},
	{"JA", "Japan", "jp"},
	{"BR", "Brazil", "com.br"},
	{"MX", "Mexico", "mx"},
	{"AR", "Argentina", "com.ar"},
	{"TU", "Turkey", "com.tr"},
	{"EG", "Egypt", "eg"},
	{"SA", "Saudi Arabia", "sa"},
	{"IR", "Iran", "ir"},
	{"IZ", "Iraq", "iq"},
	{"SY", "Syria", "sy"},
	{"AF", "Afghanistan", "af"},
	{"KE", "Kenya", "co.ke"},
	{"GH", "Ghana", "com.gh"},
	{"EI", "Ireland", "ie"},
	{"NZ", "New Zealand", "co.nz"},
	{"SN", "Singapore", "sg"},
	{"MY", "Malaysia", "com.my"},
	{"ID", "Indonesia", "co.id"},
	{"TH", "Thailand", "co.th"},
	{"VM", "Vietnam", "vn"},
	{"KS", "South Korea", "co.kr"},
	{"KN", "North Korea", "kp"},
	{"UP", "Ukraine", "ua"},
	{"PL", "Poland", "pl"},
	{"NL", "Netherlands", "nl"},
	{"SW", "Sweden", "se"},
	{"NO", "Norway", "no"},
	{"DA", "Denmark", "dk"},
	{"FI", "Finland", "fi"},
	{"SZ", "Switzerland", "ch"},
	{"AU", "Austria", "at"},
	{"GR", "Greece", "gr"},
	{"PO", "Portugal", "pt"},
	{"BE", "Belgium", "be"},
	{"CE", "Sri Lanka", "lk"},
	{"NP", "Nepal", "com.np"},
	{"UAE", "United Arab Emirates", "ae"},
	{"QA", "Qatar", "qa"},
	{"JO", "Jordan", "jo"},
	{"LE", "Lebanon", "com.lb"},
	{"ZI", "Zimbabwe", "co.zw"},
	{"UG", "Uganda", "ug"},
	{"TZ", "Tanzania", "co.tz"},
}

var fipsIndex = func() map[string]int {
	m := make(map[string]int, len(Countries))
	for i, c := range Countries {
		m[c.FIPS] = i
	}
	return m
}()

var tldIndex = func() map[string]int {
	m := make(map[string]int, len(Countries))
	for i, c := range Countries {
		m[c.TLD] = i
	}
	return m
}()

// CountryIndex returns the index of the FIPS code in Countries, or -1.
func CountryIndex(fips string) int {
	if i, ok := fipsIndex[fips]; ok {
		return i
	}
	return -1
}

// CountryByFIPS returns the country for a FIPS code.
func CountryByFIPS(fips string) (Country, bool) {
	i := CountryIndex(fips)
	if i < 0 {
		return Country{}, false
	}
	return Countries[i], true
}

// CountryFromDomain attributes a news source domain to a country by its
// top-level domain, the Section VI-C heuristic. Compound suffixes
// ("co.uk", "com.au") are matched before single-label ones, and the generic
// TLDs com/org/net attribute to the United States. Unknown suffixes return
// -1, mirroring sources the paper could not attribute (e.g.
// theguardian.com counts as US — the inaccuracy the paper acknowledges).
func CountryFromDomain(domain string) int {
	domain = strings.ToLower(strings.TrimSuffix(domain, "."))
	labels := strings.Split(domain, ".")
	if len(labels) >= 3 {
		if i, ok := tldIndex[labels[len(labels)-2]+"."+labels[len(labels)-1]]; ok {
			return i
		}
	}
	if len(labels) >= 2 {
		last := labels[len(labels)-1]
		switch last {
		case "org", "net":
			return CountryIndex("US")
		}
		if i, ok := tldIndex[last]; ok {
			return i
		}
	}
	return -1
}
