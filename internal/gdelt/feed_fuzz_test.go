package gdelt

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzFeedProtocol fuzzes the lastupdate/masterfile protocol parser. The
// live poller feeds raw HTTP bodies straight into ReadLastUpdate, so the
// parser must never panic, and the strict and tolerant readers must agree:
// whenever the strict reader accepts an input, the tolerant master-list
// reader must see zero malformed lines and the same entries, and every
// accepted entry must round-trip byte-identically through
// FormatMasterEntry. Kind and Interval must be total on accepted entries.
func FuzzFeedProtocol(f *testing.F) {
	f.Add([]byte("1024 0a1b2c3d 20150218230000.export.csv\n"))
	f.Add([]byte("0 00000000 20150218230000.mentions.csv"))
	f.Add([]byte("7 deadbeef 20150218230000.gkg.csv\n512 cafebabe 20150219001500.export.csv\n"))
	f.Add([]byte("  99 ffffffff http://data.gdeltproject.org/gdeltv2/20150218230000.export.csv  \n\n"))
	f.Add([]byte("corrupt entry 0 without proper fields\n"))
	f.Add([]byte("-1 0a1b2c3d 20150218230000.export.csv\n"))
	f.Add([]byte("1024 0a1b2c3 20150218230000.export.csv\n"))
	f.Add([]byte("1024 0a1b2c3d 20150218230000.unknown.csv\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := ReadLastUpdate(bytes.NewReader(data))
		if err != nil {
			// Strict rejection is always a valid outcome; it must just not
			// have panicked to get here.
			return
		}
		ml, mlErr := ReadMasterList(bytes.NewReader(data))
		if mlErr != nil {
			t.Fatalf("strict reader accepted input the tolerant reader cannot stream: %v", mlErr)
		}
		if len(ml.Malformed) != 0 {
			t.Fatalf("strict reader accepted input with %d tolerant-malformed lines: %q", len(ml.Malformed), ml.Malformed)
		}
		if !reflect.DeepEqual(ml.Entries, entries) {
			t.Fatalf("strict and tolerant readers disagree: %v vs %v", entries, ml.Entries)
		}
		for _, e := range entries {
			line := FormatMasterEntry(e)
			back, err := ParseMasterEntry(line)
			if err != nil {
				t.Fatalf("accepted entry %+v does not re-parse: %v", e, err)
			}
			if back != e {
				t.Fatalf("entry round-trip changed: %+v -> %q -> %+v", e, line, back)
			}
			if e.Kind() == "" {
				t.Fatalf("accepted entry %+v has no kind", e)
			}
			// Interval may legitimately fail (paths need no timestamp), but
			// it must be total.
			_, _ = e.Interval()
		}
	})
}
