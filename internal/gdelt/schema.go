// Package gdelt implements the GDELT 2.0 data model: the Events and Mentions
// table schemas, the tab-separated raw file codec, the 15-minute capture
// interval timestamp arithmetic, the master file list format, country code
// tables, and record validation with the defect taxonomy of Table II.
//
// GDELT publishes two files per 15-minute interval: an Events file (one row
// per newly observed or updated event, 61 tab-separated columns) and a
// Mentions file (one row per article mentioning an event, 16 columns). This
// package is faithful to those column layouts so the conversion pipeline
// exercises the same parsing work the paper's preprocessing tool performs.
package gdelt

// EventColumns lists the 61 column names of a GDELT 2.0 Events export file,
// in file order.
var EventColumns = []string{
	"GlobalEventID", "Day", "MonthYear", "Year", "FractionDate",
	"Actor1Code", "Actor1Name", "Actor1CountryCode", "Actor1KnownGroupCode",
	"Actor1EthnicCode", "Actor1Religion1Code", "Actor1Religion2Code",
	"Actor1Type1Code", "Actor1Type2Code", "Actor1Type3Code",
	"Actor2Code", "Actor2Name", "Actor2CountryCode", "Actor2KnownGroupCode",
	"Actor2EthnicCode", "Actor2Religion1Code", "Actor2Religion2Code",
	"Actor2Type1Code", "Actor2Type2Code", "Actor2Type3Code",
	"IsRootEvent", "EventCode", "EventBaseCode", "EventRootCode",
	"QuadClass", "GoldsteinScale", "NumMentions", "NumSources", "NumArticles",
	"AvgTone",
	"Actor1Geo_Type", "Actor1Geo_Fullname", "Actor1Geo_CountryCode",
	"Actor1Geo_ADM1Code", "Actor1Geo_ADM2Code", "Actor1Geo_Lat",
	"Actor1Geo_Long", "Actor1Geo_FeatureID",
	"Actor2Geo_Type", "Actor2Geo_Fullname", "Actor2Geo_CountryCode",
	"Actor2Geo_ADM1Code", "Actor2Geo_ADM2Code", "Actor2Geo_Lat",
	"Actor2Geo_Long", "Actor2Geo_FeatureID",
	"ActionGeo_Type", "ActionGeo_Fullname", "ActionGeo_CountryCode",
	"ActionGeo_ADM1Code", "ActionGeo_ADM2Code", "ActionGeo_Lat",
	"ActionGeo_Long", "ActionGeo_FeatureID",
	"DateAdded", "SourceURL",
}

// MentionColumns lists the 16 column names of a GDELT 2.0 Mentions export
// file, in file order.
var MentionColumns = []string{
	"GlobalEventID", "EventTimeDate", "MentionTimeDate", "MentionType",
	"MentionSourceName", "MentionIdentifier", "SentenceID",
	"Actor1CharOffset", "Actor2CharOffset", "ActionCharOffset", "InRawText",
	"Confidence", "MentionDocLen", "MentionDocTone",
	"MentionDocTranslationInfo", "Extras",
}

// Column indexes into a raw Events row. Only the fields the analysis system
// consumes are named; the remaining columns are carried opaquely.
const (
	EvColGlobalEventID = 0
	EvColDay           = 1
	EvColMonthYear     = 2
	EvColYear          = 3
	EvColFractionDate  = 4
	EvColIsRootEvent   = 25
	EvColEventCode     = 26
	EvColQuadClass     = 29
	EvColGoldstein     = 30
	EvColNumMentions   = 31
	EvColNumSources    = 32
	EvColNumArticles   = 33
	EvColAvgTone       = 34
	EvColActionGeoType = 51
	EvColActionGeoName = 52
	EvColActionCountry = 53
	EvColActionLat     = 56
	EvColActionLong    = 57
	EvColDateAdded     = 59
	EvColSourceURL     = 60
)

// Column indexes into a raw Mentions row.
const (
	MnColGlobalEventID   = 0
	MnColEventTimeDate   = 1
	MnColMentionTimeDate = 2
	MnColMentionType     = 3
	MnColSourceName      = 4
	MnColIdentifier      = 5
	MnColSentenceID      = 6
	MnColConfidence      = 11
	MnColDocLen          = 12
	MnColDocTone         = 13
)

// MentionTypeWeb is the MentionType of a scraped web news article; the
// analyses in the paper consider only these.
const MentionTypeWeb = 1

// Event is the parsed, analysis-relevant projection of an Events row.
type Event struct {
	GlobalEventID int64
	Day           int32 // YYYYMMDD of the event
	EventCode     int32 // CAMEO action code
	QuadClass     int8
	IsRootEvent   bool
	Goldstein     float32
	NumMentions   int32
	NumSources    int32
	NumArticles   int32
	AvgTone       float32
	ActionCountry string // FIPS 10-4 two-letter country code, "" if untagged
	ActionLat     float32
	ActionLong    float32
	DateAdded     Timestamp // capture time, YYYYMMDDHHMMSS
	SourceURL     string    // URL of the first article reporting the event
}

// Mention is the parsed, analysis-relevant projection of a Mentions row.
type Mention struct {
	GlobalEventID int64
	EventTime     Timestamp // when the event happened (capture-interval resolution)
	MentionTime   Timestamp // when the article was scraped
	MentionType   int8
	SourceName    string // news source domain, e.g. "example.co.uk"
	Identifier    string // article URL
	SentenceID    int16
	Confidence    int8 // 0..100
	DocLen        int32
	DocTone       float32
}

// Delay returns the publishing delay of the mention in 15-minute capture
// intervals: the number of intervals between the event time and the mention
// time. The paper's convention makes the minimum observable delay 1 (an
// article captured in the same interval as its event still took one interval
// to surface), and negative raw differences (defect class "event date in the
// future") clamp to 0 so they remain visible to validation.
func (m *Mention) Delay() int64 {
	d := m.MentionTime.IntervalIndex() - m.EventTime.IntervalIndex()
	if d < 0 {
		return 0
	}
	return d + 1
}
