package gdelt

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseMasterEntry(t *testing.T) {
	e, err := ParseMasterEntry("12345 0a1b2c3d 20150218230000.export.csv")
	if err != nil {
		t.Fatal(err)
	}
	if e.Size != 12345 || e.Checksum != "0a1b2c3d" || e.Kind() != "export" {
		t.Fatalf("entry %+v", e)
	}
	iv, err := e.Interval()
	if err != nil || iv != 20150218230000 {
		t.Fatalf("interval %v %v", iv, err)
	}

	e, err = ParseMasterEntry("1 ffffffff data/20150218230000.mentions.csv")
	if err != nil || e.Kind() != "mentions" {
		t.Fatalf("mentions entry: %v %+v", err, e)
	}
	if iv, err := e.Interval(); err != nil || iv != 20150218230000 {
		t.Fatalf("interval with dir: %v %v", iv, err)
	}
}

func TestParseMasterEntryMalformed(t *testing.T) {
	bad := []string{
		"",
		"only two fields",
		"notanumber 0a1b2c3d x.export.csv",
		"-5 0a1b2c3d x.export.csv",
		"10 shortsum x.export.csv",
		"10 zzzzzzzz x.export.csv",
		"10 0a1b2c3d x.unknown.bin",
		"10 0a1b2c3d x.export.csv extra",
	}
	for _, line := range bad {
		if _, err := ParseMasterEntry(line); err == nil {
			t.Fatalf("line %q should fail", line)
		}
	}
}

func TestMasterEntryIntervalErrors(t *testing.T) {
	e := MasterEntry{Path: "noext"}
	if _, err := e.Interval(); err == nil {
		t.Fatal("no-dot path should fail")
	}
	e = MasterEntry{Path: "badtime.export.csv"}
	if _, err := e.Interval(); err == nil {
		t.Fatal("bad timestamp should fail")
	}
}

func TestReadMasterListCollectsMalformed(t *testing.T) {
	input := strings.Join([]string{
		"100 0a1b2c3d 20150218000000.export.csv",
		"200 0a1b2c3e 20150218000000.mentions.csv",
		"this line is broken",
		"",
		"300 0a1b2c3f 20150218001500.export.csv",
	}, "\n")
	ml, err := ReadMasterList(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(ml.Entries) != 3 {
		t.Fatalf("entries %d", len(ml.Entries))
	}
	if len(ml.Malformed) != 1 || ml.Malformed[0] != "this line is broken" {
		t.Fatalf("malformed %v", ml.Malformed)
	}
}

func TestWriteMasterListRoundTrip(t *testing.T) {
	ml := &MasterList{
		Entries: []MasterEntry{
			{Size: 100, Checksum: "0a1b2c3d", Path: "20150218000000.export.csv"},
			{Size: 200, Checksum: "00000001", Path: "20150218000000.mentions.csv"},
		},
		Malformed: []string{"garbage line"},
	}
	var buf bytes.Buffer
	if err := WriteMasterList(&buf, ml); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMasterList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Entries) != 2 || len(got.Malformed) != 1 {
		t.Fatalf("round trip: %+v", got)
	}
	if got.Entries[0] != ml.Entries[0] || got.Entries[1] != ml.Entries[1] {
		t.Fatalf("entries differ: %+v", got.Entries)
	}
}

func TestChecksum32(t *testing.T) {
	c := Checksum32([]byte("hello"))
	if len(c) != 8 {
		t.Fatalf("checksum %q", c)
	}
	if c == Checksum32([]byte("world")) {
		t.Fatal("different payloads should differ")
	}
	if c != Checksum32([]byte("hello")) {
		t.Fatal("checksum not deterministic")
	}
}
