package gdelt

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func sampleEvent() Event {
	return Event{
		GlobalEventID: 123456789,
		Day:           20160612,
		EventCode:     190,
		QuadClass:     4,
		IsRootEvent:   true,
		Goldstein:     -10,
		NumMentions:   5234,
		NumSources:    42,
		NumArticles:   5234,
		AvgTone:       -3.25,
		ActionCountry: "US",
		ActionLat:     28.5383,
		ActionLong:    -81.3792,
		DateAdded:     20160612083000,
		SourceURL:     "https://news.example.com/orlando",
	}
}

func sampleMention() Mention {
	return Mention{
		GlobalEventID: 123456789,
		EventTime:     20160612083000,
		MentionTime:   20160612113000,
		MentionType:   MentionTypeWeb,
		SourceName:    "dailyecho.co.uk",
		Identifier:    "https://dailyecho.co.uk/news/1",
		SentenceID:    3,
		Confidence:    90,
		DocLen:        2100,
		DocTone:       -2.5,
	}
}

func TestSplitTabs(t *testing.T) {
	fields := SplitTabs([]byte("a\tb\t\tc"), nil)
	if len(fields) != 4 || string(fields[0]) != "a" || string(fields[2]) != "" || string(fields[3]) != "c" {
		t.Fatalf("fields %q", fields)
	}
	// Empty line is a single empty field.
	fields = SplitTabs(nil, fields)
	if len(fields) != 1 || len(fields[0]) != 0 {
		t.Fatalf("empty line fields %q", fields)
	}
}

func TestSplitTabsProperty(t *testing.T) {
	f := func(parts []string) bool {
		for i := range parts {
			parts[i] = strings.Map(func(r rune) rune {
				if r == '\t' || r == '\n' {
					return '_'
				}
				return r
			}, parts[i])
		}
		line := strings.Join(parts, "\t")
		fields := SplitTabs([]byte(line), nil)
		if len(parts) == 0 {
			return len(fields) == 1 && len(fields[0]) == 0
		}
		if len(fields) != len(parts) {
			return false
		}
		for i := range parts {
			if string(fields[i]) != parts[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEventRowRoundTrip(t *testing.T) {
	ev := sampleEvent()
	row := AppendEventRow(nil, &ev)
	if n := bytes.Count(row, []byte{'\t'}); n != len(EventColumns)-1 {
		t.Fatalf("event row has %d tabs, want %d", n, len(EventColumns)-1)
	}
	got, err := ParseEventFields(SplitTabs(row, nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.GlobalEventID != ev.GlobalEventID || got.Day != ev.Day ||
		got.EventCode != ev.EventCode || got.QuadClass != ev.QuadClass ||
		got.IsRootEvent != ev.IsRootEvent || got.NumMentions != ev.NumMentions ||
		got.NumSources != ev.NumSources || got.NumArticles != ev.NumArticles ||
		got.ActionCountry != ev.ActionCountry || got.DateAdded != ev.DateAdded ||
		got.SourceURL != ev.SourceURL {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, ev)
	}
	if got.Goldstein != ev.Goldstein {
		t.Fatalf("goldstein %v vs %v", got.Goldstein, ev.Goldstein)
	}
}

func TestMentionRowRoundTrip(t *testing.T) {
	mn := sampleMention()
	row := AppendMentionRow(nil, &mn)
	if n := bytes.Count(row, []byte{'\t'}); n != len(MentionColumns)-1 {
		t.Fatalf("mention row has %d tabs, want %d", n, len(MentionColumns)-1)
	}
	got, err := ParseMentionFields(SplitTabs(row, nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.GlobalEventID != mn.GlobalEventID || got.EventTime != mn.EventTime ||
		got.MentionTime != mn.MentionTime || got.MentionType != mn.MentionType ||
		got.SourceName != mn.SourceName || got.Identifier != mn.Identifier ||
		got.SentenceID != mn.SentenceID || got.Confidence != mn.Confidence ||
		got.DocLen != mn.DocLen {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, mn)
	}
}

func TestParseEventWrongColumnCount(t *testing.T) {
	if _, err := ParseEventFields(SplitTabs([]byte("1\t2\t3"), nil)); err == nil {
		t.Fatal("short event row should fail")
	}
}

func TestParseMentionWrongColumnCount(t *testing.T) {
	if _, err := ParseMentionFields(SplitTabs([]byte("1\t2"), nil)); err == nil {
		t.Fatal("short mention row should fail")
	}
}

func TestParseEventBadNumbers(t *testing.T) {
	ev := sampleEvent()
	row := AppendEventRow(nil, &ev)
	fields := SplitTabs(row, nil)
	fields[EvColGlobalEventID] = []byte("x1")
	if _, err := ParseEventFields(fields); err == nil {
		t.Fatal("bad event id should fail")
	}
	fields = SplitTabs(row, nil)
	fields[EvColNumArticles] = []byte("1.5x")
	if _, err := ParseEventFields(fields); err == nil {
		t.Fatal("bad article count should fail")
	}
}

func TestParseMentionBadNumbers(t *testing.T) {
	mn := sampleMention()
	row := AppendMentionRow(nil, &mn)
	fields := SplitTabs(row, nil)
	fields[MnColMentionTimeDate] = []byte("not-a-time")
	if _, err := ParseMentionFields(fields); err == nil {
		t.Fatal("bad mention time should fail")
	}
	fields = SplitTabs(row, nil)
	fields[MnColDocTone] = []byte("??")
	if _, err := ParseMentionFields(fields); err == nil {
		t.Fatal("bad tone should fail")
	}
}

func TestParseIntField(t *testing.T) {
	cases := map[string]int64{"": 0, "0": 0, "42": 42, "-7": -7}
	for in, want := range cases {
		got, err := parseInt64Field([]byte(in))
		if err != nil || got != want {
			t.Fatalf("parseInt64Field(%q) = %d, %v", in, got, err)
		}
	}
	for _, bad := range []string{"-", "1a", "--2", " 1"} {
		if _, err := parseInt64Field([]byte(bad)); err == nil {
			t.Fatalf("parseInt64Field(%q) should fail", bad)
		}
	}
}

func TestParseFloatField(t *testing.T) {
	got, err := parseFloat32Field([]byte(""))
	if err != nil || got != 0 {
		t.Fatalf("empty float: %v %v", got, err)
	}
	got, err = parseFloat32Field([]byte("-2.5"))
	if err != nil || got != -2.5 {
		t.Fatalf("-2.5: %v %v", got, err)
	}
	if _, err := parseFloat32Field([]byte("abc")); err == nil {
		t.Fatal("bad float should fail")
	}
}

func TestEmptySourceURLSurvivesRoundTrip(t *testing.T) {
	ev := sampleEvent()
	ev.SourceURL = ""
	ev.ActionCountry = ""
	got, err := ParseEventFields(SplitTabs(AppendEventRow(nil, &ev), nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.SourceURL != "" || got.ActionCountry != "" {
		t.Fatalf("expected empty url/country, got %+v", got)
	}
}
