package gdelt

import (
	"fmt"
	"strconv"
)

// SplitTabs splits a raw row on tab characters, appending the fields to dst
// (which is reset first) so callers can reuse one backing slice across rows.
// The returned sub-slices alias line.
func SplitTabs(line []byte, dst [][]byte) [][]byte {
	dst = dst[:0]
	start := 0
	for i := 0; i < len(line); i++ {
		if line[i] == '\t' {
			dst = append(dst, line[start:i])
			start = i + 1
		}
	}
	return append(dst, line[start:])
}

func parseInt64Field(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, nil
	}
	neg := false
	i := 0
	if b[0] == '-' {
		neg = true
		i = 1
		if len(b) == 1 {
			return 0, fmt.Errorf("gdelt: bare minus sign")
		}
	}
	var v int64
	for ; i < len(b); i++ {
		c := b[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("gdelt: invalid integer %q", b)
		}
		v = v*10 + int64(c-'0')
	}
	if neg {
		v = -v
	}
	return v, nil
}

func parseFloat32Field(b []byte) (float32, error) {
	if len(b) == 0 {
		return 0, nil
	}
	f, err := strconv.ParseFloat(string(b), 32)
	if err != nil {
		return 0, fmt.Errorf("gdelt: invalid float %q", b)
	}
	return float32(f), nil
}

// ParseEventFields decodes the analysis-relevant projection of an Events row
// whose fields have already been split on tabs. It requires the full
// 61-column layout.
func ParseEventFields(fields [][]byte) (Event, error) {
	var ev Event
	if len(fields) != len(EventColumns) {
		return ev, fmt.Errorf("gdelt: event row has %d columns, want %d", len(fields), len(EventColumns))
	}
	var err error
	if ev.GlobalEventID, err = parseInt64Field(fields[EvColGlobalEventID]); err != nil {
		return ev, fmt.Errorf("gdelt: GlobalEventID: %w", err)
	}
	day, err := parseInt64Field(fields[EvColDay])
	if err != nil {
		return ev, fmt.Errorf("gdelt: Day: %w", err)
	}
	ev.Day = int32(day)
	code, err := parseInt64Field(fields[EvColEventCode])
	if err != nil {
		return ev, fmt.Errorf("gdelt: EventCode: %w", err)
	}
	ev.EventCode = int32(code)
	quad, err := parseInt64Field(fields[EvColQuadClass])
	if err != nil {
		return ev, fmt.Errorf("gdelt: QuadClass: %w", err)
	}
	ev.QuadClass = int8(quad)
	root, err := parseInt64Field(fields[EvColIsRootEvent])
	if err != nil {
		return ev, fmt.Errorf("gdelt: IsRootEvent: %w", err)
	}
	ev.IsRootEvent = root != 0
	if ev.Goldstein, err = parseFloat32Field(fields[EvColGoldstein]); err != nil {
		return ev, fmt.Errorf("gdelt: GoldsteinScale: %w", err)
	}
	nm, err := parseInt64Field(fields[EvColNumMentions])
	if err != nil {
		return ev, fmt.Errorf("gdelt: NumMentions: %w", err)
	}
	ev.NumMentions = int32(nm)
	ns, err := parseInt64Field(fields[EvColNumSources])
	if err != nil {
		return ev, fmt.Errorf("gdelt: NumSources: %w", err)
	}
	ev.NumSources = int32(ns)
	na, err := parseInt64Field(fields[EvColNumArticles])
	if err != nil {
		return ev, fmt.Errorf("gdelt: NumArticles: %w", err)
	}
	ev.NumArticles = int32(na)
	if ev.AvgTone, err = parseFloat32Field(fields[EvColAvgTone]); err != nil {
		return ev, fmt.Errorf("gdelt: AvgTone: %w", err)
	}
	ev.ActionCountry = string(fields[EvColActionCountry])
	if ev.ActionLat, err = parseFloat32Field(fields[EvColActionLat]); err != nil {
		return ev, fmt.Errorf("gdelt: ActionGeo_Lat: %w", err)
	}
	if ev.ActionLong, err = parseFloat32Field(fields[EvColActionLong]); err != nil {
		return ev, fmt.Errorf("gdelt: ActionGeo_Long: %w", err)
	}
	added, err := parseInt64Field(fields[EvColDateAdded])
	if err != nil {
		return ev, fmt.Errorf("gdelt: DateAdded: %w", err)
	}
	ev.DateAdded = Timestamp(added)
	ev.SourceURL = string(fields[EvColSourceURL])
	return ev, nil
}

// ParseMentionFields decodes the analysis-relevant projection of a Mentions
// row whose fields have already been split on tabs.
func ParseMentionFields(fields [][]byte) (Mention, error) {
	var mn Mention
	if len(fields) != len(MentionColumns) {
		return mn, fmt.Errorf("gdelt: mention row has %d columns, want %d", len(fields), len(MentionColumns))
	}
	var err error
	if mn.GlobalEventID, err = parseInt64Field(fields[MnColGlobalEventID]); err != nil {
		return mn, fmt.Errorf("gdelt: GlobalEventID: %w", err)
	}
	et, err := parseInt64Field(fields[MnColEventTimeDate])
	if err != nil {
		return mn, fmt.Errorf("gdelt: EventTimeDate: %w", err)
	}
	mn.EventTime = Timestamp(et)
	mt, err := parseInt64Field(fields[MnColMentionTimeDate])
	if err != nil {
		return mn, fmt.Errorf("gdelt: MentionTimeDate: %w", err)
	}
	mn.MentionTime = Timestamp(mt)
	typ, err := parseInt64Field(fields[MnColMentionType])
	if err != nil {
		return mn, fmt.Errorf("gdelt: MentionType: %w", err)
	}
	mn.MentionType = int8(typ)
	mn.SourceName = string(fields[MnColSourceName])
	mn.Identifier = string(fields[MnColIdentifier])
	sid, err := parseInt64Field(fields[MnColSentenceID])
	if err != nil {
		return mn, fmt.Errorf("gdelt: SentenceID: %w", err)
	}
	mn.SentenceID = int16(sid)
	conf, err := parseInt64Field(fields[MnColConfidence])
	if err != nil {
		return mn, fmt.Errorf("gdelt: Confidence: %w", err)
	}
	mn.Confidence = int8(conf)
	dl, err := parseInt64Field(fields[MnColDocLen])
	if err != nil {
		return mn, fmt.Errorf("gdelt: MentionDocLen: %w", err)
	}
	mn.DocLen = int32(dl)
	if mn.DocTone, err = parseFloat32Field(fields[MnColDocTone]); err != nil {
		return mn, fmt.Errorf("gdelt: MentionDocTone: %w", err)
	}
	return mn, nil
}

// AppendEventRow appends the full 61-column tab-separated representation of
// ev to dst (without a trailing newline) and returns the extended slice.
// Columns the projection does not carry are written empty, as real GDELT
// exports frequently leave them.
func AppendEventRow(dst []byte, ev *Event) []byte {
	tab := func() { dst = append(dst, '\t') }
	dst = strconv.AppendInt(dst, ev.GlobalEventID, 10)
	tab()
	dst = strconv.AppendInt(dst, int64(ev.Day), 10)
	tab()
	dst = strconv.AppendInt(dst, int64(ev.Day/100), 10) // MonthYear
	tab()
	dst = strconv.AppendInt(dst, int64(ev.Day/10000), 10) // Year
	tab()
	dst = strconv.AppendFloat(dst, float64(ev.Day/10000), 'f', 4, 32) // FractionDate (approx)
	for c := EvColFractionDate + 1; c < EvColIsRootEvent; c++ {
		tab() // actor columns left empty
	}
	tab()
	if ev.IsRootEvent {
		dst = append(dst, '1')
	} else {
		dst = append(dst, '0')
	}
	tab()
	dst = strconv.AppendInt(dst, int64(ev.EventCode), 10)
	tab()
	dst = strconv.AppendInt(dst, int64(ev.EventCode/10), 10) // EventBaseCode
	tab()
	dst = strconv.AppendInt(dst, int64(ev.EventCode/100), 10) // EventRootCode
	tab()
	dst = strconv.AppendInt(dst, int64(ev.QuadClass), 10)
	tab()
	dst = strconv.AppendFloat(dst, float64(ev.Goldstein), 'f', 1, 32)
	tab()
	dst = strconv.AppendInt(dst, int64(ev.NumMentions), 10)
	tab()
	dst = strconv.AppendInt(dst, int64(ev.NumSources), 10)
	tab()
	dst = strconv.AppendInt(dst, int64(ev.NumArticles), 10)
	tab()
	dst = strconv.AppendFloat(dst, float64(ev.AvgTone), 'f', 2, 32)
	for c := EvColAvgTone + 1; c < EvColActionGeoType; c++ {
		tab() // actor geo columns left empty
	}
	tab()
	if ev.ActionCountry != "" {
		dst = append(dst, '1') // ActionGeo_Type: country-level match
	} else {
		dst = append(dst, '0')
	}
	tab() // ActionGeo_Fullname empty
	tab()
	dst = append(dst, ev.ActionCountry...)
	tab() // ADM1
	tab() // ADM2
	tab()
	if ev.ActionCountry != "" {
		dst = strconv.AppendFloat(dst, float64(ev.ActionLat), 'f', 4, 32)
	}
	tab()
	if ev.ActionCountry != "" {
		dst = strconv.AppendFloat(dst, float64(ev.ActionLong), 'f', 4, 32)
	}
	tab() // FeatureID
	tab()
	dst = strconv.AppendInt(dst, int64(ev.DateAdded), 10)
	tab()
	dst = append(dst, ev.SourceURL...)
	return dst
}

// AppendMentionRow appends the 16-column tab-separated representation of mn
// to dst (without a trailing newline) and returns the extended slice.
func AppendMentionRow(dst []byte, mn *Mention) []byte {
	tab := func() { dst = append(dst, '\t') }
	dst = strconv.AppendInt(dst, mn.GlobalEventID, 10)
	tab()
	dst = strconv.AppendInt(dst, int64(mn.EventTime), 10)
	tab()
	dst = strconv.AppendInt(dst, int64(mn.MentionTime), 10)
	tab()
	dst = strconv.AppendInt(dst, int64(mn.MentionType), 10)
	tab()
	dst = append(dst, mn.SourceName...)
	tab()
	dst = append(dst, mn.Identifier...)
	tab()
	dst = strconv.AppendInt(dst, int64(mn.SentenceID), 10)
	tab() // Actor1CharOffset
	tab() // Actor2CharOffset
	tab() // ActionCharOffset
	tab()
	dst = append(dst, '1') // InRawText
	tab()
	dst = strconv.AppendInt(dst, int64(mn.Confidence), 10)
	tab()
	dst = strconv.AppendInt(dst, int64(mn.DocLen), 10)
	tab()
	dst = strconv.AppendFloat(dst, float64(mn.DocTone), 'f', 2, 32)
	tab() // MentionDocTranslationInfo
	tab() // Extras
	return dst
}
