package gdelt

import (
	"strings"
	"testing"
)

func TestDefectClassString(t *testing.T) {
	if got := DefectMalformedMasterEntry.String(); !strings.Contains(got, "master list") {
		t.Fatalf("label %q", got)
	}
	if got := DefectClass(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("out-of-range label %q", got)
	}
}

func TestValidationReportRecordAndTotal(t *testing.T) {
	var r ValidationReport
	r.Record(DefectMissingArchive, "chunk-1")
	r.Record(DefectMissingArchive, "chunk-2")
	r.Record(DefectBadRow, "")
	r.Record(DefectClass(-1), "ignored")
	r.Record(DefectClass(99), "ignored")
	if r.Counts[DefectMissingArchive] != 2 || r.Counts[DefectBadRow] != 1 {
		t.Fatalf("counts %v", r.Counts)
	}
	if r.Total() != 3 {
		t.Fatalf("total %d", r.Total())
	}
	if len(r.Examples[DefectMissingArchive]) != 2 {
		t.Fatalf("examples %v", r.Examples[DefectMissingArchive])
	}
	if len(r.Examples[DefectBadRow]) != 0 {
		t.Fatal("empty example should not be retained")
	}
}

func TestValidationReportExampleCap(t *testing.T) {
	var r ValidationReport
	for i := 0; i < 20; i++ {
		r.Record(DefectBadRow, "row")
	}
	if len(r.Examples[DefectBadRow]) != 5 {
		t.Fatalf("default cap is 5, have %d", len(r.Examples[DefectBadRow]))
	}
	r2 := ValidationReport{MaxExamples: 2}
	for i := 0; i < 20; i++ {
		r2.Record(DefectBadRow, "row")
	}
	if len(r2.Examples[DefectBadRow]) != 2 {
		t.Fatalf("explicit cap: %d", len(r2.Examples[DefectBadRow]))
	}
}

func TestValidationReportMerge(t *testing.T) {
	var a, b ValidationReport
	a.Record(DefectMissingSourceURL, "e1")
	b.Record(DefectMissingSourceURL, "e2")
	b.Record(DefectFutureEventDate, "e3")
	a.Merge(&b)
	if a.Counts[DefectMissingSourceURL] != 2 || a.Counts[DefectFutureEventDate] != 1 {
		t.Fatalf("merged counts %v", a.Counts)
	}
	if got := a.Classes(); len(got) != 2 {
		t.Fatalf("classes %v", got)
	}
}

func TestValidateEvent(t *testing.T) {
	var r ValidationReport
	ev := Event{GlobalEventID: 1, Day: 20150301, SourceURL: "http://x"}
	ValidateEvent(&r, &ev, 20150302120000)
	if r.Total() != 0 {
		t.Fatalf("clean event produced defects: %v", r.Counts)
	}
	ev.SourceURL = ""
	ValidateEvent(&r, &ev, 20150302120000)
	if r.Counts[DefectMissingSourceURL] != 1 {
		t.Fatalf("missing url not counted: %v", r.Counts)
	}
	// Event date after the first mention's date: future-date defect.
	ev.SourceURL = "http://x"
	ev.Day = 20150305
	ValidateEvent(&r, &ev, 20150302120000)
	if r.Counts[DefectFutureEventDate] != 1 {
		t.Fatalf("future date not counted: %v", r.Counts)
	}
	// Unknown first mention: no future-date check possible.
	ValidateEvent(&r, &ev, 0)
	if r.Counts[DefectFutureEventDate] != 1 {
		t.Fatalf("zero first mention should not count: %v", r.Counts)
	}
}

func TestValidationReportString(t *testing.T) {
	var r ValidationReport
	r.Record(DefectMissingArchive, "c")
	s := r.String()
	if !strings.Contains(s, "Missing archives") || !strings.Contains(s, "1") {
		t.Fatalf("render %q", s)
	}
}

func TestSortedExampleClasses(t *testing.T) {
	var r ValidationReport
	r.Record(DefectBadRow, "x")
	r.Record(DefectMalformedMasterEntry, "y")
	got := r.SortedExampleClasses()
	if len(got) != 2 || got[0] != DefectMalformedMasterEntry || got[1] != DefectBadRow {
		t.Fatalf("classes %v", got)
	}
}
