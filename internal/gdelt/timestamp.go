package gdelt

import (
	"fmt"
	"time"
)

// Timestamp is a GDELT timestamp in YYYYMMDDHHMMSS form, e.g.
// 20150218230000. The zero value means "missing".
type Timestamp int64

// Epoch is the start of the GDELT 2.0 archive: 18 February 2015 00:00 UTC,
// the first day the Event Database was collected in the 2.0 format.
var Epoch = time.Date(2015, 2, 18, 0, 0, 0, 0, time.UTC)

// EpochTimestamp is Epoch as a Timestamp.
const EpochTimestamp Timestamp = 20150218000000

// IntervalSeconds is the length of one GDELT capture interval: 15 minutes.
const IntervalSeconds = 15 * 60

// IntervalsPerDay is the number of capture intervals in 24 hours (96).
const IntervalsPerDay = 24 * 3600 / IntervalSeconds

// IntervalsPerYear is the number of capture intervals in a 365-day year
// (35040); the paper's year-later outliers sit at this scale.
const IntervalsPerYear = 365 * IntervalsPerDay

// MakeTimestamp builds a Timestamp from calendar components.
func MakeTimestamp(year, month, day, hour, min, sec int) Timestamp {
	return Timestamp(int64(year)*1e10 + int64(month)*1e8 + int64(day)*1e6 +
		int64(hour)*1e4 + int64(min)*1e2 + int64(sec))
}

// TimestampFromTime converts a time.Time (taken in UTC) to a Timestamp.
func TimestampFromTime(t time.Time) Timestamp {
	t = t.UTC()
	return MakeTimestamp(t.Year(), int(t.Month()), t.Day(), t.Hour(), t.Minute(), t.Second())
}

// Year returns the calendar year component.
func (ts Timestamp) Year() int { return int(ts / 1e10) }

// Month returns the calendar month component (1..12).
func (ts Timestamp) Month() int { return int(ts / 1e8 % 100) }

// Day returns the day-of-month component.
func (ts Timestamp) Day() int { return int(ts / 1e6 % 100) }

// Hour returns the hour component.
func (ts Timestamp) Hour() int { return int(ts / 1e4 % 100) }

// Minute returns the minute component.
func (ts Timestamp) Minute() int { return int(ts / 1e2 % 100) }

// Second returns the seconds component.
func (ts Timestamp) Second() int { return int(ts % 100) }

// YYYYMMDD returns the date part as an int32 (e.g. 20150218).
func (ts Timestamp) YYYYMMDD() int32 { return int32(ts / 1e6) }

// Time converts the timestamp to a time.Time in UTC. Invalid component
// combinations are normalized the way time.Date normalizes them.
func (ts Timestamp) Time() time.Time {
	return time.Date(ts.Year(), time.Month(ts.Month()), ts.Day(),
		ts.Hour(), ts.Minute(), ts.Second(), 0, time.UTC)
}

// Valid reports whether the timestamp has plausible calendar components and
// round-trips through time.Date unchanged.
func (ts Timestamp) Valid() bool {
	if ts <= 0 {
		return false
	}
	y, mo, d := ts.Year(), ts.Month(), ts.Day()
	h, mi, s := ts.Hour(), ts.Minute(), ts.Second()
	if y < 1979 || y > 2100 || mo < 1 || mo > 12 || d < 1 || d > 31 ||
		h > 23 || mi > 59 || s > 59 {
		return false
	}
	return TimestampFromTime(ts.Time()) == ts
}

// IntervalIndex returns the number of whole 15-minute capture intervals
// between Epoch and the timestamp. Timestamps before Epoch yield negative
// indexes.
func (ts Timestamp) IntervalIndex() int64 {
	sec := ts.Time().Unix() - Epoch.Unix()
	if sec >= 0 {
		return sec / IntervalSeconds
	}
	return -((-sec + IntervalSeconds - 1) / IntervalSeconds)
}

// IntervalStart returns the timestamp of the start of capture interval idx.
func IntervalStart(idx int64) Timestamp {
	return TimestampFromTime(Epoch.Add(time.Duration(idx) * time.Duration(IntervalSeconds) * time.Second))
}

// String renders the timestamp in its canonical 14-digit form.
func (ts Timestamp) String() string { return fmt.Sprintf("%014d", int64(ts)) }

// ParseTimestamp parses a 14-digit YYYYMMDDHHMMSS string. It rejects
// non-digit characters and wrong lengths but does not validate calendar
// plausibility; use Valid for that (the split lets validation count
// malformed vs. implausible defects separately).
func ParseTimestamp(s string) (Timestamp, error) {
	if len(s) != 14 {
		return 0, fmt.Errorf("gdelt: timestamp %q: want 14 digits", s)
	}
	var v int64
	for i := 0; i < 14; i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("gdelt: timestamp %q: non-digit at %d", s, i)
		}
		v = v*10 + int64(c-'0')
	}
	return Timestamp(v), nil
}
