package gdelt

import "testing"

// Raw-codec throughput: the per-row cost of the preprocessing tool.

func BenchmarkParseEventRow(b *testing.B) {
	ev := sampleEvent()
	row := AppendEventRow(nil, &ev)
	var fields [][]byte
	b.SetBytes(int64(len(row)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fields = SplitTabs(row, fields)
		if _, err := ParseEventFields(fields); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseMentionRow(b *testing.B) {
	mn := sampleMention()
	row := AppendMentionRow(nil, &mn)
	var fields [][]byte
	b.SetBytes(int64(len(row)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fields = SplitTabs(row, fields)
		if _, err := ParseMentionFields(fields); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendMentionRow(b *testing.B) {
	mn := sampleMention()
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendMentionRow(buf[:0], &mn)
	}
}

func BenchmarkTimestampIntervalIndex(b *testing.B) {
	ts := Timestamp(20171106221500)
	var sink int64
	for i := 0; i < b.N; i++ {
		sink += ts.IntervalIndex()
	}
	_ = sink
}

func BenchmarkCountryFromDomain(b *testing.B) {
	domains := []string{"dailyecho.co.uk", "www.nytimes.com", "news.com.au", "unknown.xyz"}
	var sink int
	for i := 0; i < b.N; i++ {
		sink += CountryFromDomain(domains[i&3])
	}
	_ = sink
}
