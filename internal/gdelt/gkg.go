package gdelt

import (
	"fmt"
	"strings"
)

// GKGColumns lists the 27 column names of a GDELT 2.1 Global Knowledge
// Graph export file, in file order. The GKG records, per article, the
// themes, entities, tone and other "real world knowledge" Section III
// describes GDELT extracting alongside the Events/Mentions tables.
var GKGColumns = []string{
	"GKGRECORDID", "DATE", "SourceCollectionIdentifier", "SourceCommonName",
	"DocumentIdentifier", "Counts", "V2Counts", "Themes", "V2Themes",
	"Locations", "V2Locations", "Persons", "V2Persons", "Organizations",
	"V2Organizations", "V2Tone", "Dates", "GCAM", "SharingImage",
	"RelatedImages", "SocialImageEmbeds", "SocialVideoEmbeds", "Quotations",
	"AllNames", "Amounts", "TranslationInfo", "Extras",
}

// Column indexes into a raw GKG row.
const (
	GkgColRecordID    = 0
	GkgColDate        = 1
	GkgColSourceName  = 3
	GkgColDocID       = 4
	GkgColThemes      = 7
	GkgColPersons     = 11
	GkgColOrgs        = 13
	GkgColTone        = 15
	GkgColTranslation = 25
)

// GKGRecord is the parsed, analysis-relevant projection of a GKG row.
type GKGRecord struct {
	// RecordID is "<date>-<seq>", unique per record.
	RecordID string
	// Date is the capture timestamp.
	Date Timestamp
	// SourceName is the publishing domain.
	SourceName string
	// DocID is the article URL.
	DocID string
	// Themes, Persons and Organizations are the extracted annotations.
	Themes        []string
	Persons       []string
	Organizations []string
	// Tone is the V2Tone leading value (average document tone).
	Tone float32
	// Translated reports whether the article was machine-translated
	// (non-empty TranslationInfo; Section III: 65 languages translated in
	// real time).
	Translated bool
}

// splitSemis splits a semicolon-separated annotation list, dropping empties.
func splitSemis(b []byte) []string {
	if len(b) == 0 {
		return nil
	}
	parts := strings.Split(string(b), ";")
	out := parts[:0]
	for _, p := range parts {
		if p != "" {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// ParseGKGFields decodes a GKG row whose fields have been split on tabs.
func ParseGKGFields(fields [][]byte) (GKGRecord, error) {
	var r GKGRecord
	if len(fields) != len(GKGColumns) {
		return r, fmt.Errorf("gdelt: gkg row has %d columns, want %d", len(fields), len(GKGColumns))
	}
	r.RecordID = string(fields[GkgColRecordID])
	if r.RecordID == "" {
		return r, fmt.Errorf("gdelt: gkg row has empty record id")
	}
	date, err := parseInt64Field(fields[GkgColDate])
	if err != nil {
		return r, fmt.Errorf("gdelt: gkg DATE: %w", err)
	}
	r.Date = Timestamp(date)
	r.SourceName = string(fields[GkgColSourceName])
	r.DocID = string(fields[GkgColDocID])
	r.Themes = splitSemis(fields[GkgColThemes])
	r.Persons = splitSemis(fields[GkgColPersons])
	r.Organizations = splitSemis(fields[GkgColOrgs])
	// V2Tone is "tone,positive,negative,polarity,...": take the head.
	tone := fields[GkgColTone]
	if i := indexByte(tone, ','); i >= 0 {
		tone = tone[:i]
	}
	if r.Tone, err = parseFloat32Field(tone); err != nil {
		return r, fmt.Errorf("gdelt: gkg V2Tone: %w", err)
	}
	r.Translated = len(fields[GkgColTranslation]) > 0
	return r, nil
}

func indexByte(b []byte, c byte) int {
	for i, v := range b {
		if v == c {
			return i
		}
	}
	return -1
}

// AppendGKGRow appends the 27-column tab-separated representation of r to
// dst (without a trailing newline).
func AppendGKGRow(dst []byte, r *GKGRecord) []byte {
	tab := func() { dst = append(dst, '\t') }
	dst = append(dst, r.RecordID...)
	tab()
	dst = append(dst, r.Date.String()...)
	tab()
	dst = append(dst, '1') // SourceCollectionIdentifier: web
	tab()
	dst = append(dst, r.SourceName...)
	tab()
	dst = append(dst, r.DocID...)
	tab() // Counts
	tab() // V2Counts
	tab()
	dst = appendSemis(dst, r.Themes)
	tab() // V2Themes
	tab() // Locations
	tab() // V2Locations
	tab()
	dst = appendSemis(dst, r.Persons)
	tab() // V2Persons
	tab()
	dst = appendSemis(dst, r.Organizations)
	tab() // V2Organizations
	tab()
	dst = append(dst, fmt.Sprintf("%.2f,0,0,0", r.Tone)...)
	for c := GkgColTone + 1; c < GkgColTranslation; c++ {
		tab()
	}
	tab()
	if r.Translated {
		dst = append(dst, "srclc:xx;eng:GT"...)
	}
	tab() // Extras
	return dst
}

func appendSemis(dst []byte, items []string) []byte {
	for i, it := range items {
		if i > 0 {
			dst = append(dst, ';')
		}
		dst = append(dst, it...)
	}
	return dst
}
