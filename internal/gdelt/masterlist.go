package gdelt

import (
	"bufio"
	"fmt"
	"hash/crc32"
	"io"
	"strconv"
	"strings"
)

// MasterEntry is one line of the GDELT master file list: the size, checksum
// and location of one 15-minute export file.
type MasterEntry struct {
	Size     int64
	Checksum string // hex CRC-32 of the file contents
	Path     string // e.g. "20150218230000.export.csv"
}

// Kind reports which table the entry belongs to: "export" (Events),
// "mentions", "gkg" (Global Knowledge Graph), or "" when the filename does
// not follow the convention.
func (e MasterEntry) Kind() string {
	switch {
	case strings.HasSuffix(e.Path, ".export.csv"):
		return "export"
	case strings.HasSuffix(e.Path, ".mentions.csv"):
		return "mentions"
	case strings.HasSuffix(e.Path, ".gkg.csv"):
		return "gkg"
	}
	return ""
}

// Interval parses the capture-interval timestamp out of the entry filename.
func (e MasterEntry) Interval() (Timestamp, error) {
	base := e.Path
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	dot := strings.IndexByte(base, '.')
	if dot < 0 {
		return 0, fmt.Errorf("gdelt: master entry %q has no timestamp", e.Path)
	}
	return ParseTimestamp(base[:dot])
}

// FormatMasterEntry renders the canonical "size checksum path" line.
func FormatMasterEntry(e MasterEntry) string {
	return fmt.Sprintf("%d %s %s", e.Size, e.Checksum, e.Path)
}

// ParseMasterEntry parses one master list line. Malformed lines are the
// first defect class of Table II.
func ParseMasterEntry(line string) (MasterEntry, error) {
	parts := strings.Fields(line)
	if len(parts) != 3 {
		return MasterEntry{}, fmt.Errorf("gdelt: master entry %q: want 3 fields, have %d", line, len(parts))
	}
	size, err := strconv.ParseInt(parts[0], 10, 64)
	if err != nil || size < 0 {
		return MasterEntry{}, fmt.Errorf("gdelt: master entry %q: bad size", line)
	}
	if len(parts[1]) != 8 {
		return MasterEntry{}, fmt.Errorf("gdelt: master entry %q: bad checksum", line)
	}
	if _, err := strconv.ParseUint(parts[1], 16, 32); err != nil {
		return MasterEntry{}, fmt.Errorf("gdelt: master entry %q: bad checksum", line)
	}
	e := MasterEntry{Size: size, Checksum: parts[1], Path: parts[2]}
	if e.Kind() == "" {
		return MasterEntry{}, fmt.Errorf("gdelt: master entry %q: unknown file kind", line)
	}
	return e, nil
}

// MasterList is a parsed master file list together with the lines that
// failed to parse.
type MasterList struct {
	Entries   []MasterEntry
	Malformed []string // raw lines that did not parse (Table II row 1)
}

// ReadMasterList parses a master file list stream. Parse failures do not
// abort the read; they are collected in Malformed, mirroring the paper's
// tolerance for the 53 malformed entries it found.
func ReadMasterList(r io.Reader) (*MasterList, error) {
	ml := &MasterList{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		e, err := ParseMasterEntry(line)
		if err != nil {
			ml.Malformed = append(ml.Malformed, line)
			continue
		}
		ml.Entries = append(ml.Entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gdelt: reading master list: %w", err)
	}
	return ml, nil
}

// ReadLastUpdate parses a lastupdate stream — the small file the live feed
// rewrites every 15 minutes listing the newest tick's files. Unlike the
// master list, which spans years and tolerates the malformed lines the
// paper catalogued, lastupdate is tiny and regenerated constantly: a line
// that does not parse means the feed is mid-rewrite or corrupt, so the
// whole read fails and the poller simply retries next tick.
func ReadLastUpdate(r io.Reader) ([]MasterEntry, error) {
	var entries []MasterEntry
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		e, err := ParseMasterEntry(line)
		if err != nil {
			return nil, fmt.Errorf("gdelt: lastupdate: %w", err)
		}
		entries = append(entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("gdelt: reading lastupdate: %w", err)
	}
	return entries, nil
}

// WriteMasterList renders entries (and raw malformed lines, if any, in their
// original form) to w.
func WriteMasterList(w io.Writer, ml *MasterList) error {
	bw := bufio.NewWriter(w)
	for _, e := range ml.Entries {
		if _, err := fmt.Fprintln(bw, FormatMasterEntry(e)); err != nil {
			return err
		}
	}
	for _, line := range ml.Malformed {
		if _, err := fmt.Fprintln(bw, line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Checksum32 returns the hex CRC-32 (IEEE) of data, the checksum the master
// list carries.
func Checksum32(data []byte) string {
	return fmt.Sprintf("%08x", crc32.ChecksumIEEE(data))
}
