package gdelt

import "testing"

func TestCountryTableInvariants(t *testing.T) {
	if len(Countries) < 50 {
		t.Fatalf("need at least 50 countries for Figure 8, have %d", len(Countries))
	}
	seenFIPS := map[string]bool{}
	seenTLD := map[string]bool{}
	for _, c := range Countries {
		if c.FIPS == "" || c.Name == "" || c.TLD == "" {
			t.Fatalf("incomplete country %+v", c)
		}
		if seenFIPS[c.FIPS] {
			t.Fatalf("duplicate FIPS %q", c.FIPS)
		}
		if seenTLD[c.TLD] {
			t.Fatalf("duplicate TLD %q", c.TLD)
		}
		seenFIPS[c.FIPS] = true
		seenTLD[c.TLD] = true
	}
}

func TestPaperCountriesPresent(t *testing.T) {
	// Top publishing countries (Table V) and top reported countries
	// (Table VI) must all be present.
	for _, fips := range []string{"UK", "US", "AS", "IN", "IT", "CA", "SF", "NI", "BG", "RP",
		"CH", "RS", "IS", "PK"} {
		if CountryIndex(fips) < 0 {
			t.Fatalf("missing paper country %q", fips)
		}
	}
}

func TestCountryLookups(t *testing.T) {
	c, ok := CountryByFIPS("UK")
	if !ok || c.Name != "United Kingdom" {
		t.Fatalf("UK lookup: %v %+v", ok, c)
	}
	if _, ok := CountryByFIPS("XX"); ok {
		t.Fatal("unknown FIPS should miss")
	}
	if CountryIndex("US") != 1 {
		t.Fatalf("US index %d (table order matters for the experiments)", CountryIndex("US"))
	}
}

func TestCountryFromDomain(t *testing.T) {
	cases := map[string]string{
		"dailyecho.co.uk":       "UK",
		"www.nytimes.com":       "US",
		"theguardian.com":       "US", // the TLD heuristic's documented inaccuracy
		"news.com.au":           "AS",
		"timesofindia.in":       "IN",
		"corriere.it":           "IT",
		"cbc.ca":                "CA",
		"news24.co.za":          "SF",
		"punchng.ng":            "NI",
		"thedailystar.com.bd":   "BG",
		"inquirer.ph":           "RP",
		"xinhua.cn":             "CH",
		"rt.ru":                 "RS",
		"haaretz.co.il":         "IS",
		"dawn.pk":               "PK",
		"somesite.org":          "US",
		"another.net":           "US",
		"deep.sub.domain.co.uk": "UK",
	}
	for domain, wantFIPS := range cases {
		got := CountryFromDomain(domain)
		if got < 0 {
			t.Fatalf("%q unattributed", domain)
		}
		if Countries[got].FIPS != wantFIPS {
			t.Fatalf("%q -> %s want %s", domain, Countries[got].FIPS, wantFIPS)
		}
	}
}

func TestCountryFromDomainUnknown(t *testing.T) {
	for _, d := range []string{"localhost", "site.xyz", "", "onelabel"} {
		if got := CountryFromDomain(d); got >= 0 {
			t.Fatalf("%q should be unattributed, got %s", d, Countries[got].FIPS)
		}
	}
}

func TestCountryFromDomainCaseAndDot(t *testing.T) {
	if got := CountryFromDomain("News.Example.CO.UK."); got < 0 || Countries[got].FIPS != "UK" {
		t.Fatalf("case/dot handling broken: %d", got)
	}
}
