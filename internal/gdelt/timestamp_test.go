package gdelt

import (
	"testing"
	"testing/quick"
	"time"
)

func TestTimestampComponents(t *testing.T) {
	ts := Timestamp(20160612233045)
	if ts.Year() != 2016 || ts.Month() != 6 || ts.Day() != 12 ||
		ts.Hour() != 23 || ts.Minute() != 30 || ts.Second() != 45 {
		t.Fatalf("components of %d wrong", ts)
	}
	if ts.YYYYMMDD() != 20160612 {
		t.Fatalf("yyyymmdd %d", ts.YYYYMMDD())
	}
}

func TestMakeTimestampRoundTrip(t *testing.T) {
	ts := MakeTimestamp(2019, 12, 31, 23, 45, 0)
	if ts != 20191231234500 {
		t.Fatalf("make %d", ts)
	}
	if got := TimestampFromTime(ts.Time()); got != ts {
		t.Fatalf("round trip %d -> %d", ts, got)
	}
}

func TestTimestampValid(t *testing.T) {
	valid := []Timestamp{20150218000000, 20191231235959, EpochTimestamp}
	for _, ts := range valid {
		if !ts.Valid() {
			t.Fatalf("%d should be valid", ts)
		}
	}
	invalid := []Timestamp{0, -1, 20150232000000, 20151301000000, 20150218240000,
		20150218006100, 19000101000000, 20150230120000}
	for _, ts := range invalid {
		if ts.Valid() {
			t.Fatalf("%d should be invalid", ts)
		}
	}
}

func TestIntervalIndex(t *testing.T) {
	if got := EpochTimestamp.IntervalIndex(); got != 0 {
		t.Fatalf("epoch interval %d", got)
	}
	if got := Timestamp(20150218001500).IntervalIndex(); got != 1 {
		t.Fatalf("00:15 interval %d", got)
	}
	if got := Timestamp(20150218001459).IntervalIndex(); got != 0 {
		t.Fatalf("00:14:59 interval %d", got)
	}
	if got := Timestamp(20150219000000).IntervalIndex(); got != IntervalsPerDay {
		t.Fatalf("next day interval %d want %d", got, IntervalsPerDay)
	}
	// Before epoch is negative.
	if got := Timestamp(20150217234500).IntervalIndex(); got != -1 {
		t.Fatalf("pre-epoch interval %d want -1", got)
	}
}

func TestIntervalStartRoundTrip(t *testing.T) {
	f := func(raw uint32) bool {
		idx := int64(raw % 170000) // within the archive span
		ts := IntervalStart(idx)
		return ts.IntervalIndex() == idx
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalConstants(t *testing.T) {
	if IntervalsPerDay != 96 {
		t.Fatalf("IntervalsPerDay %d", IntervalsPerDay)
	}
	if IntervalsPerYear != 35040 {
		t.Fatalf("IntervalsPerYear %d", IntervalsPerYear)
	}
}

func TestParseTimestamp(t *testing.T) {
	ts, err := ParseTimestamp("20150218230000")
	if err != nil || ts != 20150218230000 {
		t.Fatalf("parse: %v %d", err, ts)
	}
	for _, bad := range []string{"", "2015", "2015021823000x", "201502182300001"} {
		if _, err := ParseTimestamp(bad); err == nil {
			t.Fatalf("parse %q should fail", bad)
		}
	}
}

func TestTimestampString(t *testing.T) {
	if s := Timestamp(20150218000000).String(); s != "20150218000000" {
		t.Fatalf("string %q", s)
	}
	// Padded to 14 digits even for (invalid) small values.
	if s := Timestamp(5).String(); s != "00000000000005" {
		t.Fatalf("string %q", s)
	}
}

func TestEpochAgreement(t *testing.T) {
	if !Epoch.Equal(time.Date(2015, 2, 18, 0, 0, 0, 0, time.UTC)) {
		t.Fatal("epoch mismatch")
	}
	if TimestampFromTime(Epoch) != EpochTimestamp {
		t.Fatal("EpochTimestamp mismatch")
	}
}

func TestMentionDelay(t *testing.T) {
	mn := Mention{
		EventTime:   20150218000000,
		MentionTime: 20150218000000,
	}
	if d := mn.Delay(); d != 1 {
		t.Fatalf("same-interval delay %d want 1", d)
	}
	mn.MentionTime = 20150218040000 // 16 intervals later
	if d := mn.Delay(); d != 17 {
		t.Fatalf("4h delay %d want 17", d)
	}
	mn.MentionTime = 20150217000000 // before the event: defect, clamps
	if d := mn.Delay(); d != 0 {
		t.Fatalf("negative delay %d want 0", d)
	}
}
