package dist

import (
	"testing"

	"gdeltmine/internal/convert"
	"gdeltmine/internal/engine"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/queries"
	"gdeltmine/internal/store"
)

var cachedDB *store.DB

func testDB(t testing.TB) *store.DB {
	t.Helper()
	if cachedDB == nil {
		c, err := gen.Generate(gen.Small())
		if err != nil {
			t.Fatal(err)
		}
		res, err := convert.FromCorpus(c)
		if err != nil {
			t.Fatal(err)
		}
		cachedDB = res.DB
	}
	return cachedDB
}

func TestCrossCountryMatchesSharedMemory(t *testing.T) {
	db := testDB(t)
	want, err := queries.CountryQuery(engine.New(db))
	if err != nil {
		t.Fatal(err)
	}
	for _, nodes := range []int{1, 2, 4, 7} {
		cl := NewCluster(db, nodes)
		got, err := cl.CrossCountry()
		if err != nil {
			t.Fatal(err)
		}
		for i := range got.Data {
			if got.Data[i] != want.Cross.Data[i] {
				t.Fatalf("nodes=%d cell %d: %d want %d", nodes, i, got.Data[i], want.Cross.Data[i])
			}
		}
		if cl.BytesTransferred() == 0 {
			t.Fatalf("nodes=%d: no communication measured", nodes)
		}
		cl.Close()
	}
}

func TestArticlesPerQuarterMatches(t *testing.T) {
	db := testDB(t)
	want := queries.ArticlesPerQuarter(engine.New(db))
	cl := NewCluster(db, 3)
	defer cl.Close()
	got, err := cl.ArticlesPerQuarter()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want.Values) {
		t.Fatal("length")
	}
	for q := range got {
		if got[q] != want.Values[q] {
			t.Fatalf("quarter %d: %d want %d", q, got[q], want.Values[q])
		}
	}
}

func TestCountSlowMatches(t *testing.T) {
	db := testDB(t)
	e := engine.New(db)
	want := e.CountMentions(func(row int) bool {
		return int64(db.Mentions.Delay[row]) > gdelt.IntervalsPerDay
	})
	cl := NewCluster(db, 5)
	defer cl.Close()
	got, err := cl.CountSlow(gdelt.IntervalsPerDay)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("slow %d want %d", got, want)
	}
}

func TestCommunicationGrowsWithNodes(t *testing.T) {
	db := testDB(t)
	volume := func(nodes int) int64 {
		cl := NewCluster(db, nodes)
		defer cl.Close()
		if _, err := cl.CrossCountry(); err != nil {
			t.Fatal(err)
		}
		return cl.BytesTransferred()
	}
	v1, v8 := volume(1), volume(8)
	// Gathering 8 partial matrices costs more traffic than gathering 1 —
	// the inter-node bottleneck the paper's shared-memory design avoids.
	if v8 <= v1 {
		t.Fatalf("8-node traffic %d not above 1-node %d", v8, v1)
	}
}

func TestClusterLifecycle(t *testing.T) {
	db := testDB(t)
	cl := NewCluster(db, 0) // clamps to 1
	if cl.Nodes() != 1 {
		t.Fatalf("nodes %d", cl.Nodes())
	}
	cl.Close()
	cl.Close() // idempotent
	if _, err := cl.CrossCountry(); err == nil {
		t.Fatal("query on closed cluster should fail")
	}
}

func TestMessageCodec(t *testing.T) {
	vals := []int64{0, 1, -1, 1 << 40, -(1 << 40)}
	msg := encodeInt64s(vals)
	got, err := decodeInt64s(msg, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("value %d: %d want %d", i, got[i], vals[i])
		}
	}
	if _, err := decodeInt64s(msg[:2], len(vals)); err == nil {
		t.Fatal("truncated message accepted")
	}
	if _, err := decodeInt64s(append(msg, 0), len(vals)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}
