// Package dist simulates the distributed-memory deployment the paper names
// as future work ("adding distributed memory capabilities using MPI to
// handle the substantial amount of additional data"): the mention table is
// partitioned row-wise across nodes, each node runs queries strictly over
// its own shard, and partial results travel to the coordinator as
// explicitly serialized messages — the semantics of an MPI gather.
//
// Because messages are really serialized and deserialized, the simulation
// exposes the communication cost that Section IV's single shared-memory
// node avoids; the accompanying benchmark quantifies that overhead against
// the shared-memory engine.
package dist

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"

	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/matrix"
	"gdeltmine/internal/store"
)

// Cluster is a simulated distributed-memory deployment over one dataset.
type Cluster struct {
	nodes     []*node
	bytesSent atomic.Int64
	closed    bool
}

// node owns one contiguous shard of the mention table. Its goroutine is
// the "rank"; it only ever reads rows in [lo, hi).
type node struct {
	db     *store.DB
	lo, hi int
	inbox  chan request
	done   chan struct{}
}

type request struct {
	kind  queryKind
	arg   int64
	reply chan []byte // serialized partial result
}

type queryKind int

const (
	qCrossCountry queryKind = iota
	qQuarterArticles
	qCountSlow
	qShutdown
)

// NewCluster partitions the dataset across n nodes and starts one worker
// goroutine per node. n is clamped to [1, mention count].
func NewCluster(db *store.DB, n int) *Cluster {
	if n < 1 {
		n = 1
	}
	if nm := db.Mentions.Len(); n > nm && nm > 0 {
		n = nm
	}
	c := &Cluster{}
	total := db.Mentions.Len()
	for i := 0; i < n; i++ {
		nd := &node{
			db:    db,
			lo:    i * total / n,
			hi:    (i + 1) * total / n,
			inbox: make(chan request, 4),
			done:  make(chan struct{}),
		}
		c.nodes = append(c.nodes, nd)
		go nd.serve()
	}
	return c
}

// Nodes returns the number of simulated nodes.
func (c *Cluster) Nodes() int { return len(c.nodes) }

// BytesTransferred returns the total volume of gathered messages so far —
// the inter-node traffic a shared-memory deployment would not pay.
func (c *Cluster) BytesTransferred() int64 { return c.bytesSent.Load() }

// Close shuts the node goroutines down. The cluster is unusable afterward.
func (c *Cluster) Close() {
	if c.closed {
		return
	}
	c.closed = true
	for _, nd := range c.nodes {
		nd.inbox <- request{kind: qShutdown}
		<-nd.done
	}
}

// scatterGather broadcasts a request and collects the serialized partials.
func (c *Cluster) scatterGather(kind queryKind, arg int64) ([][]byte, error) {
	if c.closed {
		return nil, fmt.Errorf("dist: cluster is closed")
	}
	replies := make([]chan []byte, len(c.nodes))
	for i, nd := range c.nodes {
		replies[i] = make(chan []byte, 1)
		nd.inbox <- request{kind: kind, arg: arg, reply: replies[i]}
	}
	out := make([][]byte, len(c.nodes))
	for i, ch := range replies {
		msg := <-ch
		c.bytesSent.Add(int64(len(msg)))
		out[i] = msg
	}
	return out, nil
}

// CrossCountry runs the Table VI aggregated query across the cluster: each
// node builds its local country contingency matrix, the coordinator
// deserializes and sums the partials.
func (c *Cluster) CrossCountry() (*matrix.Int64, error) {
	msgs, err := c.scatterGather(qCrossCountry, 0)
	if err != nil {
		return nil, err
	}
	nc := len(gdelt.Countries)
	sum := matrix.NewInt64(nc, nc)
	for _, msg := range msgs {
		part, err := decodeInt64s(msg, nc*nc)
		if err != nil {
			return nil, err
		}
		for i, v := range part {
			sum.Data[i] += v
		}
	}
	return sum, nil
}

// ArticlesPerQuarter runs the Figure 5 query across the cluster.
func (c *Cluster) ArticlesPerQuarter() ([]int64, error) {
	msgs, err := c.scatterGather(qQuarterArticles, 0)
	if err != nil {
		return nil, err
	}
	nq := c.nodes[0].db.NumQuarters()
	sum := make([]int64, nq)
	for _, msg := range msgs {
		part, err := decodeInt64s(msg, nq)
		if err != nil {
			return nil, err
		}
		for i, v := range part {
			sum[i] += v
		}
	}
	return sum, nil
}

// CountSlow counts articles with delay above threshold across the cluster.
func (c *Cluster) CountSlow(threshold int64) (int64, error) {
	msgs, err := c.scatterGather(qCountSlow, threshold)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, msg := range msgs {
		part, err := decodeInt64s(msg, 1)
		if err != nil {
			return 0, err
		}
		total += part[0]
	}
	return total, nil
}

// serve is the node main loop: receive, compute locally, serialize, reply.
func (nd *node) serve() {
	defer close(nd.done)
	for req := range nd.inbox {
		switch req.kind {
		case qShutdown:
			return
		case qCrossCountry:
			nc := len(gdelt.Countries)
			local := make([]int64, nc*nc)
			db := nd.db
			for row := nd.lo; row < nd.hi; row++ {
				ev := db.Mentions.EventRow[row]
				r := int(db.Events.Country[ev])
				cc := int(db.SourceCountry[db.Mentions.Source[row]])
				if r >= 0 && cc >= 0 {
					local[r*nc+cc]++
				}
			}
			req.reply <- encodeInt64s(local)
		case qQuarterArticles:
			db := nd.db
			local := make([]int64, db.NumQuarters())
			for row := nd.lo; row < nd.hi; row++ {
				local[db.QuarterOfInterval(db.Mentions.Interval[row])]++
			}
			req.reply <- encodeInt64s(local)
		case qCountSlow:
			db := nd.db
			var n int64
			for row := nd.lo; row < nd.hi; row++ {
				if int64(db.Mentions.Delay[row]) > req.arg {
					n++
				}
			}
			req.reply <- encodeInt64s([]int64{n})
		}
	}
}

// encodeInt64s serializes a partial result the way an MPI program would
// pack a buffer (varint-compressed, since most cells are zero or small).
func encodeInt64s(vals []int64) []byte {
	out := make([]byte, 0, len(vals))
	for _, v := range vals {
		out = binary.AppendVarint(out, v)
	}
	return out
}

func decodeInt64s(msg []byte, n int) ([]int64, error) {
	out := make([]int64, n)
	pos := 0
	for i := 0; i < n; i++ {
		v, w := binary.Varint(msg[pos:])
		if w <= 0 {
			return nil, fmt.Errorf("dist: truncated message at value %d of %d", i, n)
		}
		out[i] = v
		pos += w
	}
	if pos != len(msg) {
		return nil, fmt.Errorf("dist: %d trailing bytes in message", len(msg)-pos)
	}
	return out, nil
}
