package dist

import (
	"testing"

	"gdeltmine/internal/engine"
	"gdeltmine/internal/gdelt"
)

// The shared-versus-distributed ablation behind Section IV's design choice:
// "the large memory of the system ... obviates the need for inter-node
// communication, which constitutes a potential performance bottleneck."
// The distributed path pays message serialization and gather latency that
// the shared-memory engine does not.

func BenchmarkSharedMemoryCrossCountry(b *testing.B) {
	db := testDB(b)
	e := engine.New(db)
	nc := len(gdelt.Countries)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := e.CrossCount(nc, nc, func(row int) (int, int) {
			ev := db.Mentions.EventRow[row]
			return int(db.Events.Country[ev]), int(db.SourceCountry[db.Mentions.Source[row]])
		})
		if m.Sum() == 0 {
			b.Fatal("empty")
		}
	}
}

func benchClusterCross(b *testing.B, nodes int) {
	db := testDB(b)
	cl := NewCluster(db, nodes)
	defer cl.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.CrossCountry(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(cl.BytesTransferred())/float64(b.N), "msg-bytes/op")
}

func BenchmarkDistributedCrossCountry2Nodes(b *testing.B) { benchClusterCross(b, 2) }
func BenchmarkDistributedCrossCountry4Nodes(b *testing.B) { benchClusterCross(b, 4) }
func BenchmarkDistributedCrossCountry8Nodes(b *testing.B) { benchClusterCross(b, 8) }
