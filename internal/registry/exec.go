package registry

import (
	"fmt"

	"gdeltmine/internal/engine"
	"gdeltmine/internal/qcache"
	"gdeltmine/internal/shard"
)

// Executor runs registered queries through an optional result cache. It is
// the one place that knows how a descriptor execution becomes a cache key:
// kind, canonical params, the engine view's mention-row window, and the
// store's snapshot version at dispatch time. A nil Executor (or nil Cache)
// executes directly — the CLI's one-shot queries take that path.
type Executor struct {
	Cache *qcache.Cache
}

// Execute runs descriptor d with resolved params p against engine view e,
// returning the (possibly shared, treat-as-immutable) result and how it was
// obtained. Results of cancelled computations are never cached and surface
// as the context's error, so transports keep their timeout semantics;
// waiters joining a cancelled leader retry as the new leader while their
// own context is live (qcache.Do's retry loop).
func (x *Executor) Execute(d *Descriptor, e *engine.Engine, p Params) (any, qcache.Outcome, error) {
	compute := func() (any, error) {
		v, err := d.Run(e, p)
		if err != nil {
			return nil, err
		}
		// A cancelled scan returns a partial aggregate; poisoning the cache
		// with it would serve truncated results forever. The context error
		// wins over the value.
		if cerr := e.Context().Err(); cerr != nil {
			return nil, cerr
		}
		return v, nil
	}
	if x == nil || x.Cache == nil || (d.Bypass != nil && d.Bypass(p)) {
		v, err := compute()
		return v, qcache.Bypass, err
	}
	lo, hi := e.Window()
	key := qcache.Key{
		Kind:    d.Kind,
		Params:  d.Canonical(p),
		Window:  fmt.Sprintf("%d:%d", lo, hi),
		Version: e.DB().Version(),
	}
	return x.Cache.Do(e.Context(), key, compute)
}

// ExecuteSharded is Execute against a sharded view. The cache key's Window
// embeds the per-shard version vector of the overlapping shards (see
// shard.DB.WindowVersionKey) and Version is the max over them, so a
// tail-shard append invalidates exactly the entries whose windows touch
// the tail while cold-shard entries stay warm. A view restricted to a
// shard subset (degraded serving) additionally carries its subset as the
// key's Scope, so a partial result is never stored under — or served for —
// the full-coverage key.
func (x *Executor) ExecuteSharded(d *Descriptor, v *shard.View, p Params) (any, qcache.Outcome, error) {
	if d.RunSharded == nil {
		return nil, qcache.Bypass, fmt.Errorf("registry: kind %q has no sharded execution", d.Kind)
	}
	compute := func() (any, error) {
		val, err := d.RunSharded(v, p)
		if err != nil {
			return nil, err
		}
		if cerr := v.Context().Err(); cerr != nil {
			return nil, cerr
		}
		return val, nil
	}
	if x == nil || x.Cache == nil || (d.Bypass != nil && d.Bypass(p)) {
		val, err := compute()
		return val, qcache.Bypass, err
	}
	from, to := v.Window()
	key := qcache.Key{
		Kind:    d.Kind,
		Params:  d.Canonical(p),
		Window:  v.DB().WindowVersionKey(from, to),
		Version: v.DB().VersionMax(from, to),
		Scope:   v.ShardScope(),
	}
	return x.Cache.Do(v.Context(), key, compute)
}
