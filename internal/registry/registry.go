// Package registry is the single source of truth for the system's query
// surface: one table of query descriptors — kind, parameter schema, and an
// execution function against the engine — that the HTTP server
// (internal/serve), the CLI (cmd/gdeltquery), the benchmark harness
// (cmd/gdeltbench) and the differential test harness (internal/baseline)
// all dispatch through. Before the registry the same query inventory was
// wired three separate times; now a kind registered here is automatically
// served under /api/v1/<kind>, runnable as `gdeltquery <kind>`, covered by
// the differential harness, and — because a descriptor plus its resolved
// parameters canonicalize to a stable string — keyable in the result
// cache (internal/qcache).
package registry

import (
	"fmt"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"gdeltmine/internal/engine"
	"gdeltmine/internal/shard"
)

// ParamType is the wire type of one query parameter.
type ParamType int

const (
	// IntParam is a positive integer (e.g. k, window).
	IntParam ParamType = iota
	// StringParam is a free-form string (e.g. a qlang where expression).
	StringParam
	// StringListParam is a repeatable string (e.g. theme=...&theme=...).
	StringListParam
)

// String names the type for `gdeltquery list` and error messages.
func (t ParamType) String() string {
	switch t {
	case IntParam:
		return "int"
	case StringParam:
		return "string"
	case StringListParam:
		return "string list"
	}
	return "unknown"
}

// ParamSpec declares one parameter of a query kind.
type ParamSpec struct {
	// Name is the parameter name in URLs and -param k=v pairs.
	Name string
	// Type is the wire type.
	Type ParamType
	// Default is the textual default applied when the parameter is absent
	// (ignored for Required parameters). Empty string is a valid default
	// for StringParam.
	Default string
	// Required rejects requests that omit the parameter.
	Required bool
	// Max clamps IntParam values statically; 0 means no static cap (the
	// query clamps against dataset bounds itself).
	Max int
	// Canon, when non-nil, canonicalizes a resolved StringParam value
	// before the query and the cache key see it — e.g. a qlang expression
	// normalizes clause order and operator spelling, so "tone>5 and
	// delay>2" and "delay>2 && tone>5.0" share one cache entry. Invalid
	// values pass through unchanged and fail in the query with a parameter
	// error.
	Canon func(string) string
	// Help is the one-line description shown by `gdeltquery list`.
	Help string
}

// Params holds the resolved values of one request against a schema, with
// defaults applied. The zero value resolves every lookup to the zero of
// its type.
type Params struct {
	ints    map[string]int
	strs    map[string]string
	strList map[string][]string
}

// Int returns the resolved integer parameter.
func (p Params) Int(name string) int { return p.ints[name] }

// Str returns the resolved string parameter.
func (p Params) Str(name string) string { return p.strs[name] }

// Strings returns the resolved string-list parameter.
func (p Params) Strings(name string) []string { return p.strList[name] }

// badParamError marks parameter-shaped failures (unparseable values,
// missing required parameters, malformed filter expressions) so transports
// can map them to 400 rather than 500.
type badParamError struct{ err error }

func (e badParamError) Error() string { return e.err.Error() }
func (e badParamError) Unwrap() error { return e.err }

// BadParamf builds a parameter error; IsBadParam recognizes it.
func BadParamf(format string, args ...any) error {
	return badParamError{fmt.Errorf(format, args...)}
}

// BadParam wraps an existing error (e.g. a qlang compile error) as a
// parameter error.
func BadParam(err error) error {
	if err == nil {
		return nil
	}
	return badParamError{err}
}

// IsBadParam reports whether err (anywhere in its chain) is a parameter
// error that should surface as a client error, not a server failure.
func IsBadParam(err error) bool {
	for err != nil {
		if _, ok := err.(badParamError); ok {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// Descriptor is one registered query kind: the keyable description of "a
// query" that every dispatch surface shares.
type Descriptor struct {
	// Kind is the canonical name: URL path segment under /api/v1/, CLI
	// subcommand, metric label, and cache-key component.
	Kind string
	// Help is the one-line description for listings.
	Help string
	// Params is the parameter schema, in canonical (listing and
	// cache-key) order.
	Params []ParamSpec
	// NeedsGKG marks kinds that require Global Knowledge Graph data;
	// they fail with queries.ErrNoGKG on datasets converted without it.
	NeedsGKG bool
	// Run executes the query against an engine view. The result must be a
	// freshly built, JSON-encodable value that callers treat as immutable
	// — it may be shared by reference across concurrent cached requests.
	Run func(e *engine.Engine, p Params) (any, error)
	// RunSharded executes the query against a sharded view, fanning out
	// per shard and reducing through the global dictionary remaps. It must
	// produce the same value (bit-exact integers, 1e-9 floats) as Run on
	// the equivalent monolith — the invariant the differential battery in
	// internal/baseline pins for every kind.
	RunSharded func(v *shard.View, p Params) (any, error)
	// Bypass, when non-nil, marks requests whose results must not be
	// cached: explain output depends on the forced plan mode, which is
	// deliberately excluded from cache keys because executed results are
	// plan-independent.
	Bypass func(p Params) bool
	// BenchPanel marks kinds included in the shard-speedup benchmark panel
	// (gdeltbench -shard-bench): scan-heavy kinds whose sharded execution
	// fans out across the worker pool, each runnable with default
	// parameters.
	BenchPanel bool
}

// ParseParams resolves the descriptor's schema against get, which returns
// the raw values of a named parameter (url.Values.Get semantics with
// repetition: nil or empty slice means absent). Unknown parameters are the
// caller's concern — transports that want strictness use CheckKnown.
func (d *Descriptor) ParseParams(get func(name string) []string) (Params, error) {
	p := Params{
		ints:    make(map[string]int),
		strs:    make(map[string]string),
		strList: make(map[string][]string),
	}
	for _, spec := range d.Params {
		raw := get(spec.Name)
		if len(raw) == 0 {
			if spec.Required {
				return Params{}, BadParamf("%s: required parameter %q missing", d.Kind, spec.Name)
			}
			raw = nil
		}
		switch spec.Type {
		case IntParam:
			v := spec.Default
			if raw != nil {
				v = raw[len(raw)-1]
			}
			n, err := strconv.Atoi(v)
			if err != nil || n < 1 {
				return Params{}, BadParamf("invalid %s %q", spec.Name, v)
			}
			if spec.Max > 0 && n > spec.Max {
				n = spec.Max
			}
			p.ints[spec.Name] = n
		case StringParam:
			v := spec.Default
			if raw != nil {
				v = raw[len(raw)-1]
			}
			if spec.Canon != nil {
				v = spec.Canon(v)
			}
			p.strs[spec.Name] = v
		case StringListParam:
			vals := raw
			if vals == nil && spec.Default != "" {
				vals = strings.Split(spec.Default, ",")
			}
			p.strList[spec.Name] = vals
		}
	}
	return p, nil
}

// ParseURLValues is ParseParams over parsed query values.
func (d *Descriptor) ParseURLValues(q url.Values) (Params, error) {
	return d.ParseParams(func(name string) []string { return q[name] })
}

// CheckKnown rejects parameter names that are neither in the schema nor in
// the common set every kind accepts — the strict mode the CLI uses so a
// typoed -param fails loudly instead of being silently ignored.
func (d *Descriptor) CheckKnown(names []string) error {
	for _, n := range names {
		if IsCommonParam(n) {
			continue
		}
		known := false
		for _, spec := range d.Params {
			if spec.Name == n {
				known = true
				break
			}
		}
		if !known {
			return BadParamf("%s: unknown parameter %q (see `gdeltquery list`)", d.Kind, n)
		}
	}
	return nil
}

// Canonical renders resolved parameters as the stable string the cache
// keys on: spec-ordered name=value pairs with defaults materialized, so
// "?k=10", "?" (absent) and any parameter ordering all map to one key.
func (d *Descriptor) Canonical(p Params) string {
	var b strings.Builder
	for i, spec := range d.Params {
		if i > 0 {
			b.WriteByte('&')
		}
		b.WriteString(spec.Name)
		b.WriteByte('=')
		switch spec.Type {
		case IntParam:
			b.WriteString(strconv.Itoa(p.Int(spec.Name)))
		case StringParam:
			b.WriteString(url.QueryEscape(p.Str(spec.Name)))
		case StringListParam:
			for j, v := range p.Strings(spec.Name) {
				if j > 0 {
					b.WriteByte(',')
				}
				b.WriteString(url.QueryEscape(v))
			}
		}
	}
	return b.String()
}

var (
	kinds   = make(map[string]*Descriptor)
	ordered []*Descriptor
	// aliases maps legacy spellings (CLI -query values, old endpoint
	// names) to canonical kinds.
	aliases = make(map[string]string)
)

// register adds a descriptor at package init; duplicate kinds are a
// programming error.
func register(d *Descriptor) *Descriptor {
	if _, dup := kinds[d.Kind]; dup {
		panic("registry: duplicate kind " + d.Kind)
	}
	kinds[d.Kind] = d
	ordered = append(ordered, d)
	return d
}

// registerAlias maps a legacy spelling to an existing kind.
func registerAlias(alias, kind string) {
	if _, ok := kinds[kind]; !ok {
		panic("registry: alias to unknown kind " + kind)
	}
	aliases[alias] = kind
}

// Lookup resolves a kind name or legacy alias to its descriptor.
func Lookup(name string) (*Descriptor, bool) {
	if d, ok := kinds[name]; ok {
		return d, true
	}
	if canonical, ok := aliases[name]; ok {
		return kinds[canonical], true
	}
	return nil, false
}

// MustLookup is Lookup for names known at compile time.
func MustLookup(name string) *Descriptor {
	d, ok := Lookup(name)
	if !ok {
		panic("registry: unknown kind " + name)
	}
	return d
}

// All returns every descriptor in registration order.
func All() []*Descriptor {
	out := make([]*Descriptor, len(ordered))
	copy(out, ordered)
	return out
}

// Panel returns the descriptors marked for the shard-speedup benchmark
// panel, in registration order.
func Panel() []*Descriptor {
	var out []*Descriptor
	for _, d := range ordered {
		if d.BenchPanel {
			out = append(out, d)
		}
	}
	return out
}

// Kinds returns every canonical kind name, sorted.
func Kinds() []string {
	out := make([]string, 0, len(kinds))
	for k := range kinds {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
