package registry

import (
	"strconv"

	"gdeltmine/internal/engine"
	"gdeltmine/internal/gdelt"
)

// Common parameters accepted by every query kind, on top of each
// descriptor's own schema: they shape the engine view (parallelism and
// capture-time window), not the query.
const (
	ParamWorkers = "workers"
	ParamFrom    = "from"
	ParamTo      = "to"
)

// IsCommonParam reports whether name is one of the engine-view parameters
// every kind accepts.
func IsCommonParam(name string) bool {
	return name == ParamWorkers || name == ParamFrom || name == ParamTo
}

// DeriveEngine applies the common parameters to a base engine view:
// workers pins the parallel worker count (0 restores the default), and
// from/to restrict scans to the capture intervals of a timestamp window.
// Transport concerns (request context, kind label) stay with the caller;
// errors are parameter errors (IsBadParam).
func DeriveEngine(e *engine.Engine, get func(name string) []string) (*engine.Engine, error) {
	one := func(name string) string {
		v := get(name)
		if len(v) == 0 {
			return ""
		}
		return v[len(v)-1]
	}
	if ws := one(ParamWorkers); ws != "" {
		w, err := strconv.Atoi(ws)
		if err != nil || w < 0 {
			return nil, BadParamf("invalid workers %q", ws)
		}
		e = e.WithWorkers(w)
	}
	from, to := one(ParamFrom), one(ParamTo)
	if from != "" || to != "" {
		db := e.DB()
		base := db.Meta.Start.IntervalIndex()
		lo, hi := int64(0), int64(db.Meta.Intervals)
		if from != "" {
			ts, err := gdelt.ParseTimestamp(from)
			if err != nil {
				return nil, BadParamf("invalid from: %v", err)
			}
			lo = ts.IntervalIndex() - base
		}
		if to != "" {
			ts, err := gdelt.ParseTimestamp(to)
			if err != nil {
				return nil, BadParamf("invalid to: %v", err)
			}
			hi = ts.IntervalIndex() - base
		}
		if lo < 0 {
			lo = 0
		}
		if hi > int64(db.Meta.Intervals) {
			hi = int64(db.Meta.Intervals)
		}
		if hi < lo {
			return nil, BadParamf("empty window")
		}
		e = e.WithInterval(int32(lo), int32(hi))
	}
	return e, nil
}
