package registry

import (
	"sort"
	"strconv"
	"strings"

	"gdeltmine/internal/engine"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/qlang"
	"gdeltmine/internal/shard"
	"gdeltmine/internal/store"
)

// Common parameters accepted by every query kind, on top of each
// descriptor's own schema: they shape the engine view (parallelism and
// capture-time window), not the query.
const (
	ParamWorkers = "workers"
	ParamFrom    = "from"
	ParamTo      = "to"
	// ParamShards restricts a sharded execution to a comma-separated list
	// of shard indices ("shards=0,1,3"). It is the degraded-serving
	// parameter of the routing tier (internal/router): when a shard group
	// has no live replica, the router forwards queries restricted to the
	// surviving shards and flags the response as partial coverage. Only
	// valid against a sharded dataset.
	ParamShards = "shards"
	// ParamPlan pins selection queries to a physical plan ("auto", "rows",
	// "events" or "scan"). All plans produce identical results — the
	// parameter selects a strategy, not a query — so it is deliberately
	// excluded from result-cache keys; differential tests force plans
	// through it via uncached executors.
	ParamPlan = "plan"
)

// IsCommonParam reports whether name is one of the engine-view parameters
// every kind accepts.
func IsCommonParam(name string) bool {
	return name == ParamWorkers || name == ParamFrom || name == ParamTo ||
		name == ParamShards || name == ParamPlan
}

// Query-shaping parameters shared by several kinds. One constructor per
// parameter keeps the schema — name, default, canonicalization, help text —
// defined once, so every kind that accepts "where" parses, validates and
// cache-keys it identically (uniform 400 envelopes come from the shared
// BadParam path).

// kParam is the standard top-k row limit.
func kParam(help string) ParamSpec {
	return ParamSpec{Name: "k", Type: IntParam, Default: "10", Help: help}
}

// whereParam is a qlang filter expression, canonicalized (sorted clauses,
// one operator spelling, minimal quoting) before queries and cache keys
// see it. Expressions that fail to parse pass through and fail in the
// query with a parameter error.
func whereParam() ParamSpec {
	return ParamSpec{Name: "where", Type: StringParam, Default: "",
		Canon: qlang.CanonicalExpr,
		Help:  "qlang filter expression (empty matches every article)"}
}

// groupParam is the group-by field of the ad-hoc query kind.
func groupParam() ParamSpec {
	return ParamSpec{Name: "group", Type: StringParam, Default: "",
		Canon: func(s string) string { return strings.ToLower(strings.TrimSpace(s)) },
		Help:  "group rows by source, sourcecountry, eventcountry or quarter (empty: scalar)"}
}

// aggParam is the aggregate spec of the ad-hoc query kind.
func aggParam() ParamSpec {
	return ParamSpec{Name: "agg", Type: StringParam, Default: "",
		Canon: func(s string) string {
			a, err := qlang.ParseAgg(s)
			if err != nil {
				return s
			}
			return a.String()
		},
		Help: "aggregate: count (default), sum:<field> or mean:<field>"}
}

// explainParam requests the chosen plan instead of executing. It is a
// StringParam because IntParam cannot express a 0 default; truthy
// spellings canonicalize to "1", falsy ones to "".
func explainParam() ParamSpec {
	return ParamSpec{Name: "explain", Type: StringParam, Default: "",
		Canon: canonBool,
		Help:  "return the chosen plan without executing (explain=1)"}
}

func canonBool(s string) string {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "1", "true", "yes":
		return "1"
	case "", "0", "false", "no":
		return ""
	}
	return s
}

// parseExplain decodes a canonicalized explain value; anything canonBool
// left alone is a parameter error.
func parseExplain(p Params) (bool, error) {
	switch p.Str("explain") {
	case "1":
		return true, nil
	case "":
		return false, nil
	}
	return false, BadParamf("invalid explain %q (want 0 or 1)", p.Str("explain"))
}

// commonParams is the parsed form of the view-shaping parameters, shared
// by the monolithic (DeriveEngine) and sharded (DeriveView) derivations so
// both resolve workers and timestamp windows identically.
type commonParams struct {
	workers    int
	hasWorkers bool
	lo, hi     int32
	windowed   bool
	plan       engine.PlanMode
}

// lastValue resolves url.Values-style repetition: the last occurrence wins,
// absence is the empty string.
func lastValue(get func(name string) []string, name string) string {
	v := get(name)
	if len(v) == 0 {
		return ""
	}
	return v[len(v)-1]
}

// ParseShards decodes a ParamShards value ("0,1,3") against a dataset of k
// shards. Errors are parameter errors (IsBadParam).
func ParseShards(k int, raw string) ([]int, error) {
	var out []int
	seen := make(map[int]bool)
	for _, part := range strings.Split(raw, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, BadParamf("invalid shards %q", raw)
		}
		if n < 0 || n >= k {
			return nil, BadParamf("shard %d out of range [0, %d)", n, k)
		}
		if !seen[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		return nil, BadParamf("invalid shards %q", raw)
	}
	sort.Ints(out)
	return out, nil
}

func parseCommon(meta store.Meta, get func(name string) []string) (commonParams, error) {
	var c commonParams
	one := func(name string) string { return lastValue(get, name) }
	if ws := one(ParamWorkers); ws != "" {
		w, err := strconv.Atoi(ws)
		if err != nil || w < 0 {
			return c, BadParamf("invalid workers %q", ws)
		}
		c.workers, c.hasWorkers = w, true
	}
	from, to := one(ParamFrom), one(ParamTo)
	if from != "" || to != "" {
		base := meta.Start.IntervalIndex()
		lo, hi := int64(0), int64(meta.Intervals)
		if from != "" {
			ts, err := gdelt.ParseTimestamp(from)
			if err != nil {
				return c, BadParamf("invalid from: %v", err)
			}
			lo = ts.IntervalIndex() - base
		}
		if to != "" {
			ts, err := gdelt.ParseTimestamp(to)
			if err != nil {
				return c, BadParamf("invalid to: %v", err)
			}
			hi = ts.IntervalIndex() - base
		}
		if lo < 0 {
			lo = 0
		}
		if hi > int64(meta.Intervals) {
			hi = int64(meta.Intervals)
		}
		if hi < lo {
			return c, BadParamf("empty window")
		}
		c.lo, c.hi, c.windowed = int32(lo), int32(hi), true
	}
	if ps := one(ParamPlan); ps != "" {
		m, err := engine.ParsePlanMode(ps)
		if err != nil {
			return c, BadParamf("invalid plan: %v", err)
		}
		c.plan = m
	}
	return c, nil
}

// DeriveEngine applies the common parameters to a base engine view:
// workers pins the parallel worker count (0 restores the default), and
// from/to restrict scans to the capture intervals of a timestamp window.
// Transport concerns (request context, kind label) stay with the caller;
// errors are parameter errors (IsBadParam).
func DeriveEngine(e *engine.Engine, get func(name string) []string) (*engine.Engine, error) {
	if lastValue(get, ParamShards) != "" {
		return nil, BadParamf("shards: only valid against a sharded dataset")
	}
	c, err := parseCommon(e.DB().Meta, get)
	if err != nil {
		return nil, err
	}
	if c.hasWorkers {
		e = e.WithWorkers(c.workers)
	}
	if c.windowed {
		e = e.WithInterval(c.lo, c.hi)
	}
	if c.plan != engine.PlanAuto {
		e = e.WithPlan(c.plan)
	}
	return e, nil
}

// DeriveView is DeriveEngine for a sharded view: the same parameters
// parsed the same way, applied to the fan-out execution context.
func DeriveView(v *shard.View, get func(name string) []string) (*shard.View, error) {
	c, err := parseCommon(v.DB().Meta(), get)
	if err != nil {
		return nil, err
	}
	if c.hasWorkers {
		v = v.WithWorkers(c.workers)
	}
	if c.windowed {
		v = v.WithWindow(c.lo, c.hi)
	}
	if c.plan != engine.PlanAuto {
		v = v.WithPlan(c.plan)
	}
	if raw := lastValue(get, ParamShards); raw != "" {
		idx, err := ParseShards(v.DB().K(), raw)
		if err != nil {
			return nil, err
		}
		v = v.WithShards(idx)
	}
	return v, nil
}
