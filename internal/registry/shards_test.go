package registry

import (
	"reflect"
	"testing"
)

func TestParseShards(t *testing.T) {
	cases := []struct {
		raw  string
		want []int
	}{
		{"0", []int{0}},
		{"0,2", []int{0, 2}},
		{"3,1", []int{1, 3}},  // sorted
		{"2,2,2", []int{2}},   // deduped
		{"1, 3", []int{1, 3}}, // tolerant of spaces
		{"0,1,2,3", []int{0, 1, 2, 3}},
	}
	for _, c := range cases {
		got, err := ParseShards(4, c.raw)
		if err != nil {
			t.Fatalf("ParseShards(4, %q): %v", c.raw, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("ParseShards(4, %q) = %v, want %v", c.raw, got, c.want)
		}
	}
}

func TestParseShardsRejectsBadInput(t *testing.T) {
	for _, raw := range []string{"", "x", "-1", "4", "0,,1", "1.5", "0,4"} {
		_, err := ParseShards(4, raw)
		if err == nil {
			t.Fatalf("ParseShards(4, %q) accepted", raw)
		}
		if !IsBadParam(err) {
			t.Fatalf("ParseShards(4, %q): %v is not a bad-param error", raw, err)
		}
	}
}

// TestDeriveEngineRejectsShards keeps the restriction honest: against a
// monolithic dataset there are no shards to subset, so the parameter is a
// client error, not a silent no-op.
func TestDeriveEngineRejectsShards(t *testing.T) {
	get := func(name string) []string {
		if name == ParamShards {
			return []string{"0"}
		}
		return nil
	}
	if _, err := DeriveEngine(nil, get); err == nil || !IsBadParam(err) {
		t.Fatalf("DeriveEngine with shards param: err = %v, want bad-param", err)
	}
}
