package registry

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"gdeltmine/internal/convert"
	"gdeltmine/internal/engine"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/obs"
	"gdeltmine/internal/qcache"
	"gdeltmine/internal/store"
	"gdeltmine/internal/stream"
)

var cachedDB *store.DB

func testDB(t testing.TB) *store.DB {
	t.Helper()
	if cachedDB == nil {
		c, err := gen.Generate(gen.Small())
		if err != nil {
			t.Fatal(err)
		}
		res, err := convert.FromCorpus(c)
		if err != nil {
			t.Fatal(err)
		}
		cachedDB = res.DB
	}
	return cachedDB
}

// scanCounter returns the engine's scan counter for a kind label; obs
// deduplicates by name+labels, so this is the same counter the engine
// increments.
func scanCounter(kind string) *obs.Counter {
	return obs.Default.Counter("engine_scans_total", "scan kernels executed", obs.L("kind", kind))
}

func defaultParams(t *testing.T, d *Descriptor) Params {
	t.Helper()
	p, err := d.ParseParams(func(string) []string { return nil })
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNilExecutorBypasses(t *testing.T) {
	db := testDB(t)
	d := MustLookup("stats")
	e := engine.New(db).WithKind(d.Kind)
	p := defaultParams(t, d)

	var ex *Executor
	v, out, err := ex.Execute(d, e, p)
	if err != nil || v == nil || out != qcache.Bypass {
		t.Fatalf("nil executor: %v %v %v", v, out, err)
	}
	v, out, err = (&Executor{}).Execute(d, e, p)
	if err != nil || v == nil || out != qcache.Bypass {
		t.Fatalf("nil cache: %v %v %v", v, out, err)
	}
}

func TestExecutorMissThenHit(t *testing.T) {
	db := testDB(t)
	d := MustLookup("top-publishers")
	ex := &Executor{Cache: qcache.New(0)}
	e := engine.New(db).WithKind(d.Kind)
	p := defaultParams(t, d)

	scans := scanCounter(d.Kind)
	before := scans.Value()
	v1, out, err := ex.Execute(d, e, p)
	if err != nil || out != qcache.Miss {
		t.Fatalf("first: %v %v", out, err)
	}
	if scans.Value() != before+1 {
		t.Fatalf("miss ran %d scans, want 1", scans.Value()-before)
	}
	v2, out, err := ex.Execute(d, e, p)
	if err != nil || out != qcache.Hit {
		t.Fatalf("second: %v %v", out, err)
	}
	if scans.Value() != before+1 {
		t.Fatalf("hit ran a scan: %d total", scans.Value()-before)
	}
	if !reflect.DeepEqual(v1, v2) {
		t.Fatal("hit returned a different result")
	}
	// Different k = different canonical params = different entry.
	p5, err := d.ParseParams(func(name string) []string {
		if name == "k" {
			return []string{"5"}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, out, _ := ex.Execute(d, e, p5); out != qcache.Miss {
		t.Fatalf("distinct params outcome %v, want miss", out)
	}
}

func TestExecutorWindowIsPartOfKey(t *testing.T) {
	db := testDB(t)
	d := MustLookup("stats")
	ex := &Executor{Cache: qcache.New(0)}
	p := defaultParams(t, d)

	full := engine.New(db).WithKind(d.Kind)
	if _, out, _ := ex.Execute(d, full, p); out != qcache.Miss {
		t.Fatal("full window should miss")
	}
	windowed := full.WithInterval(0, db.Meta.Intervals/2)
	v, out, err := ex.Execute(d, windowed, p)
	if err != nil || out != qcache.Miss {
		t.Fatalf("windowed view must have its own key: %v %v", out, err)
	}
	if v == nil {
		t.Fatal("windowed result nil")
	}
	if _, out, _ := ex.Execute(d, windowed, p); out != qcache.Hit {
		t.Fatal("repeated windowed query should hit")
	}
}

// TestSingleFlight32Goroutines is the ISSUE's concurrency acceptance test:
// 32 goroutines requesting the same descriptor concurrently result in
// exactly one underlying scan, one miss, 31 hits or coalesced waiters, and
// byte-identical results.
func TestSingleFlight32Goroutines(t *testing.T) {
	db := testDB(t)
	d := MustLookup("top-publishers")
	ex := &Executor{Cache: qcache.New(0)}
	e := engine.New(db).WithKind(d.Kind)
	p := defaultParams(t, d)

	scans := scanCounter(d.Kind)
	before := scans.Value()

	const goroutines = 32
	var (
		wg       sync.WaitGroup
		start    = make(chan struct{})
		results  [goroutines]any
		outcomes [goroutines]qcache.Outcome
		errs     [goroutines]error
	)
	for i := 0; i < goroutines; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			results[i], outcomes[i], errs[i] = ex.Execute(d, e, p)
		}()
	}
	close(start)
	wg.Wait()

	if got := scans.Value() - before; got != 1 {
		t.Fatalf("%d goroutines ran %d scans, want exactly 1", goroutines, got)
	}
	var miss, served int
	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		switch outcomes[i] {
		case qcache.Miss:
			miss++
		case qcache.Hit, qcache.Coalesced:
			served++
		default:
			t.Fatalf("goroutine %d outcome %v", i, outcomes[i])
		}
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("goroutine %d result diverges", i)
		}
	}
	if miss != 1 || served != goroutines-1 {
		t.Fatalf("miss=%d served=%d, want 1 and %d", miss, served, goroutines-1)
	}
}

func TestVersionBumpInvalidates(t *testing.T) {
	db := testDB(t)
	d := MustLookup("top-publishers")
	ex := &Executor{Cache: qcache.New(0)}
	e := engine.New(db).WithKind(d.Kind)
	p := defaultParams(t, d)

	if _, out, _ := ex.Execute(d, e, p); out != qcache.Miss {
		t.Fatal("want initial miss")
	}
	if _, out, _ := ex.Execute(d, e, p); out != qcache.Hit {
		t.Fatal("want hit at stable version")
	}
	db.BumpVersion()
	scans := scanCounter(d.Kind)
	before := scans.Value()
	if _, out, _ := ex.Execute(d, e, p); out != qcache.Miss {
		t.Fatal("version bump must retire the cached result")
	}
	if scans.Value() <= before {
		t.Fatal("post-bump query did not rescan")
	}
}

// TestStreamAppendInvalidates proves the end-to-end invalidation protocol:
// a monitor bound to the store bumps the snapshot version on every folded
// feed chunk, which forces the next identical query to recompute.
func TestStreamAppendInvalidates(t *testing.T) {
	db := testDB(t)
	d := MustLookup("top-publishers")
	ex := &Executor{Cache: qcache.New(0)}
	e := engine.New(db).WithKind(d.Kind)
	p := defaultParams(t, d)

	if _, out, _ := ex.Execute(d, e, p); out != qcache.Miss {
		t.Fatal("want initial miss")
	}
	if _, out, _ := ex.Execute(d, e, p); out != qcache.Hit {
		t.Fatal("want hit before the append")
	}

	m := stream.NewMonitor(db.Meta.Start, stream.Config{})
	m.BindStore(db)
	v0 := db.Version()
	m.MarkChunk(db.Meta.Start) // one folded feed chunk = one append
	if db.Version() != v0+1 {
		t.Fatalf("version %d after append, want %d", db.Version(), v0+1)
	}
	if _, out, _ := ex.Execute(d, e, p); out != qcache.Miss {
		t.Fatal("append must invalidate the cached result")
	}
	if _, out, _ := ex.Execute(d, e, p); out != qcache.Hit {
		t.Fatal("fresh result should cache at the new version")
	}
}

// TestCancelledComputationNotCached: a context cancelled mid-execution must
// surface as the context error and leave nothing poisoned in the cache.
func TestCancelledComputationNotCached(t *testing.T) {
	db := testDB(t)
	d := MustLookup("stats")
	ex := &Executor{Cache: qcache.New(0)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the scan even starts: worst-case partial
	e := engine.New(db).WithContext(ctx).WithKind(d.Kind)
	p := defaultParams(t, d)

	_, _, err := ex.Execute(d, e, p)
	if err == nil {
		t.Fatal("cancelled execution returned no error")
	}
	// The next request with a live context recomputes: nothing was cached.
	live := engine.New(db).WithKind(d.Kind)
	if _, out, _ := ex.Execute(d, live, p); out != qcache.Miss {
		t.Fatal("cancelled partial result was cached")
	}
}

func TestDeriveEngineCommonParams(t *testing.T) {
	db := testDB(t)
	base := engine.New(db)

	e, err := DeriveEngine(base, getter(map[string][]string{"workers": {"3"}}))
	if err != nil {
		t.Fatal(err)
	}
	if e.Workers() != 3 {
		t.Fatalf("workers %d", e.Workers())
	}
	if e == base {
		t.Fatal("DeriveEngine must return a derived view, not the receiver")
	}
	if _, err := DeriveEngine(base, getter(map[string][]string{"workers": {"-1"}})); err == nil {
		t.Fatal("negative workers accepted")
	}
	if _, err := DeriveEngine(base, getter(map[string][]string{"from": {"bogus"}})); err == nil {
		t.Fatal("unparseable from accepted")
	}
}
