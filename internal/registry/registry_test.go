package registry

import (
	"strings"
	"testing"
)

// getter builds a ParseParams source from a literal map.
func getter(m map[string][]string) func(string) []string {
	return func(name string) []string { return m[name] }
}

func TestCanonicalMaterializesDefaults(t *testing.T) {
	d := MustLookup("wildfires")
	p, err := d.ParseParams(getter(nil))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := d.Canonical(p), "window=8&min=5&k=10"; got != want {
		t.Fatalf("canonical %q want %q", got, want)
	}
	// Explicitly passing the defaults produces the identical key: absent,
	// present, and reordered requests all collapse onto one cache entry.
	p2, err := d.ParseParams(getter(map[string][]string{
		"k": {"10"}, "window": {"8"}, "min": {"5"},
	}))
	if err != nil {
		t.Fatal(err)
	}
	if d.Canonical(p) != d.Canonical(p2) {
		t.Fatalf("explicit defaults changed the key: %q vs %q", d.Canonical(p), d.Canonical(p2))
	}
}

func TestCanonicalLastValueWinsAndClamping(t *testing.T) {
	d := MustLookup("themes") // k max 1000
	p, err := d.ParseParams(getter(map[string][]string{"k": {"3", "7"}}))
	if err != nil {
		t.Fatal(err)
	}
	if p.Int("k") != 7 {
		t.Fatalf("last value should win, got %d", p.Int("k"))
	}
	p, err = d.ParseParams(getter(map[string][]string{"k": {"99999"}}))
	if err != nil {
		t.Fatal(err)
	}
	if p.Int("k") != 1000 {
		t.Fatalf("static max not applied: %d", p.Int("k"))
	}
	if got := d.Canonical(p); got != "k=1000" {
		t.Fatalf("canonical %q should carry the clamped value", got)
	}
}

func TestCanonicalEscapesStrings(t *testing.T) {
	d := MustLookup("count")
	p, err := d.ParseParams(getter(map[string][]string{"where": {"delay > 96 & tone < 0"}}))
	if err != nil {
		t.Fatal(err)
	}
	got := d.Canonical(p)
	if strings.ContainsAny(got, " ") {
		t.Fatalf("canonical %q must not contain raw spaces", got)
	}
	if !strings.HasPrefix(got, "where=") {
		t.Fatalf("canonical %q", got)
	}
}

func TestParseParamsErrors(t *testing.T) {
	cases := []struct {
		kind   string
		params map[string][]string
	}{
		{"top-publishers", map[string][]string{"k": {"abc"}}},
		{"top-publishers", map[string][]string{"k": {"0"}}},
		{"top-publishers", map[string][]string{"k": {"-3"}}},
		{"theme-trends", nil}, // required theme missing
	}
	for _, tc := range cases {
		d := MustLookup(tc.kind)
		_, err := d.ParseParams(getter(tc.params))
		if err == nil {
			t.Fatalf("%s %v: expected error", tc.kind, tc.params)
		}
		if !IsBadParam(err) {
			t.Fatalf("%s %v: %v should be a bad-param error", tc.kind, tc.params, err)
		}
	}
}

func TestCheckKnown(t *testing.T) {
	d := MustLookup("top-publishers")
	if err := d.CheckKnown([]string{"k", "workers", "from", "to"}); err != nil {
		t.Fatalf("schema and common params must pass: %v", err)
	}
	err := d.CheckKnown([]string{"kk"})
	if err == nil || !IsBadParam(err) {
		t.Fatalf("typo should be a bad-param error, got %v", err)
	}
}

func TestLookupAliases(t *testing.T) {
	for alias, canonical := range map[string]string{
		"delay":      "delays",
		"quarterly":  "quarterly-delay",
		"publishers": "top-publishers",
		"events":     "top-events",
	} {
		d, ok := Lookup(alias)
		if !ok || d.Kind != canonical {
			t.Fatalf("alias %q resolved to %v, want %s", alias, d, canonical)
		}
	}
	if _, ok := Lookup("nonsense"); ok {
		t.Fatal("unknown kind resolved")
	}
}

func TestAllKindsHaveRunAndHelp(t *testing.T) {
	all := All()
	if len(all) < 15 {
		t.Fatalf("only %d kinds registered", len(all))
	}
	seen := map[string]bool{}
	for _, d := range all {
		if d.Kind == "" || d.Help == "" || d.Run == nil {
			t.Fatalf("descriptor %+v incomplete", d)
		}
		if seen[d.Kind] {
			t.Fatalf("duplicate kind %s", d.Kind)
		}
		seen[d.Kind] = true
		for _, spec := range d.Params {
			if IsCommonParam(spec.Name) {
				t.Fatalf("%s declares common param %q in its schema", d.Kind, spec.Name)
			}
		}
	}
	for _, name := range Kinds() {
		if !seen[name] {
			t.Fatalf("Kinds lists %s but All does not", name)
		}
	}
}

func TestIsBadParamUnwraps(t *testing.T) {
	inner := BadParamf("bad value")
	if !IsBadParam(inner) {
		t.Fatal("direct")
	}
	if !IsBadParam(BadParam(inner)) {
		t.Fatal("wrapped")
	}
	if IsBadParam(nil) {
		t.Fatal("nil")
	}
	if BadParam(nil) != nil {
		t.Fatal("BadParam(nil) must be nil")
	}
}
