package registry

import (
	"gdeltmine/internal/engine"
	"gdeltmine/internal/queries"
	"gdeltmine/internal/shard"
)

// The generic ad-hoc kind (DESIGN.md §13): /api/v1/query composes a qlang
// where-conjunction with a group-by field and an aggregate, executed
// through the bitmap pushdown planner. explain=1 returns the resolved plan
// — pushdown clauses, fallback clauses, estimated selectivity, kernel —
// without executing; explain responses bypass the result cache because
// they depend on the forced plan mode, which executed results do not.

func adhocSpec(p Params) (queries.AdhocSpec, error) {
	spec, err := queries.ParseAdhocSpec(p.Str("where"), p.Str("group"), p.Str("agg"), p.Int("k"))
	if err != nil {
		return queries.AdhocSpec{}, BadParam(err)
	}
	return spec, nil
}

func init() {
	register(&Descriptor{
		Kind: "query",
		Help: "ad-hoc query: filter, group and aggregate articles",
		Params: []ParamSpec{
			whereParam(),
			groupParam(),
			aggParam(),
			{Name: "k", Type: IntParam, Default: "20", Help: "grouped result row limit"},
			explainParam(),
		},
		Bypass: func(p Params) bool { return p.Str("explain") == "1" },
		Run: func(e *engine.Engine, p Params) (any, error) {
			explain, err := parseExplain(p)
			if err != nil {
				return nil, err
			}
			spec, err := adhocSpec(p)
			if err != nil {
				return nil, err
			}
			if explain {
				return queries.ExplainAdhoc(e, spec), nil
			}
			res, err := queries.AdhocQuery(e, spec)
			if err != nil {
				return nil, BadParam(err)
			}
			return res, nil
		},
		RunSharded: func(v *shard.View, p Params) (any, error) {
			explain, err := parseExplain(p)
			if err != nil {
				return nil, err
			}
			spec, err := adhocSpec(p)
			if err != nil {
				return nil, err
			}
			if explain {
				return v.AdhocExplain(spec), nil
			}
			res, err := v.AdhocQuery(spec)
			if err != nil {
				return nil, BadParam(err)
			}
			return res, nil
		},
	})
}
