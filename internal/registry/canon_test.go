package registry

import (
	"net/url"
	"testing"
)

// Parameter canonicalization (DESIGN.md §13): the shared where/group/agg/
// explain constructors canonicalize values at parse time, so every kind
// that accepts them produces identical cache keys for semantically
// identical requests — the qcache double-caching bugfix, pinned here at the
// registry layer.

func parseQuery(t *testing.T, kind, rawQuery string) (*Descriptor, Params) {
	t.Helper()
	d, ok := Lookup(kind)
	if !ok {
		t.Fatalf("kind %q not registered", kind)
	}
	q, err := url.ParseQuery(rawQuery)
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.ParseURLValues(q)
	if err != nil {
		t.Fatalf("%q: %v", rawQuery, err)
	}
	return d, p
}

func TestWhereCanonicalizedInCacheKey(t *testing.T) {
	// Spellings that must collapse: clause order, && vs and, == vs =,
	// quoting, float formatting. Checked on both the ad-hoc kind and a
	// legacy filtered kind, which share the where constructor.
	for _, kind := range []string{"query", "count"} {
		d, p1 := parseQuery(t, kind, "where="+url.QueryEscape("tone>5 and delay>2"))
		_, p2 := parseQuery(t, kind, "where="+url.QueryEscape("delay>2 && tone>5.0"))
		_, p3 := parseQuery(t, kind, "where="+url.QueryEscape("delay > 2 AND tone == 5e0")) // != semantics
		if d.Canonical(p1) != d.Canonical(p2) {
			t.Errorf("%s: equivalent spellings key differently: %q vs %q",
				kind, d.Canonical(p1), d.Canonical(p2))
		}
		if d.Canonical(p1) == d.Canonical(p3) {
			t.Errorf("%s: distinct expressions share a key: %q", kind, d.Canonical(p1))
		}
	}
}

func TestQueryParamCanonDefaults(t *testing.T) {
	d, p := parseQuery(t, "query", "")
	if got := p.Str("agg"); got != "count" {
		t.Errorf("default agg canonicalizes to %q, want count", got)
	}
	if got := p.Str("where"); got != "" {
		t.Errorf("default where %q, want empty", got)
	}
	// agg spellings collapse: "count", "" and "COUNT" share one key.
	_, p2 := parseQuery(t, "query", "agg=COUNT")
	if d.Canonical(p) != d.Canonical(p2) {
		t.Errorf("agg spellings key differently: %q vs %q", d.Canonical(p), d.Canonical(p2))
	}
	// explain truthy spellings canonicalize to "1", falsy to "".
	for raw, want := range map[string]string{
		"explain=true": "1", "explain=YES": "1", "explain=1": "1",
		"explain=0": "", "explain=false": "", "explain=": "",
	} {
		_, pe := parseQuery(t, "query", raw)
		if got := pe.Str("explain"); got != want {
			t.Errorf("%s: canonicalized to %q, want %q", raw, got, want)
		}
	}
	// group canonicalizes case and whitespace.
	_, pg := parseQuery(t, "query", "group="+url.QueryEscape(" Quarter "))
	if got := pg.Str("group"); got != "quarter" {
		t.Errorf("group canonicalized to %q, want quarter", got)
	}
}

func TestQueryExplainBypassesCache(t *testing.T) {
	d, ok := Lookup("query")
	if !ok {
		t.Fatal("query kind not registered")
	}
	if d.Bypass == nil {
		t.Fatal("query kind has no cache bypass")
	}
	_, pExplain := parseQuery(t, "query", "explain=yes")
	if !d.Bypass(pExplain) {
		t.Error("explain=yes request must bypass the result cache")
	}
	_, pRun := parseQuery(t, "query", "where="+url.QueryEscape("tone>0"))
	if d.Bypass(pRun) {
		t.Error("executing request must not bypass the result cache")
	}
}
