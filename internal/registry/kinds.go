package registry

import (
	"gdeltmine/internal/engine"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/queries"
	"gdeltmine/internal/shard"
	"gdeltmine/internal/store"
)

// The named result types below freeze the JSON shapes the HTTP API serves;
// before the registry they lived as anonymous structs inside individual
// handlers. Query kinds whose natural result type already encodes well
// (queries.DatasetStats, []queries.TopEvent, ...) return it directly.
// Every kind carries both Run (monolithic engine) and RunSharded (fan-out
// over a shard.View); the shaping helpers are shared so the two paths can
// only diverge in the aggregation itself — which the differential battery
// then pins to zero divergence.

// Defect is one row of the defects report (Table II classes).
type Defect struct {
	Class string `json:"class"`
	Count int64  `json:"count"`
}

// PublisherRow is one ranked publisher with its article count.
type PublisherRow struct {
	Rank     int    `json:"rank"`
	Source   string `json:"source"`
	Articles int64  `json:"articles"`
}

// EventSizeResult is the Figure 2 distribution with its power-law fit.
type EventSizeResult struct {
	Counts []int64 `json:"counts"`
	Alpha  float64 `json:"alpha"`
	R2     float64 `json:"r2"`
}

// CountryResult is the k×k corner of the aggregated country query
// (Tables V, VI, VII).
type CountryResult struct {
	Reported    []string    `json:"reported"`
	Publishing  []string    `json:"publishing"`
	Cross       [][]int64   `json:"cross"`
	Percent     [][]float64 `json:"percent"`
	CoReporting [][]float64 `json:"coReporting"`
}

// FollowResult is the follow-reporting matrix (Table IV).
type FollowResult struct {
	Names   []string    `json:"names"`
	F       [][]float64 `json:"f"`
	ColSums []float64   `json:"colSums"`
}

// CoReportResult is the co-reporting Jaccard matrix among top publishers.
type CoReportResult struct {
	Names   []string    `json:"names"`
	Jaccard [][]float64 `json:"jaccard"`
}

// CountResult is the article count matching a filter expression.
type CountResult struct {
	Where    string `json:"where"`
	Articles int64  `json:"articles"`
}

// TranslatedShareResult is the per-quarter share of machine-translated
// articles.
type TranslatedShareResult struct {
	Labels []string  `json:"labels"`
	Share  []float64 `json:"share"`
}

// clampK caps a requested k against a dataset-dependent bound that the
// static schema cannot know.
func clampK(k, n int) int {
	if k > n {
		return n
	}
	return k
}

// topPublisherRows resolves ids/counts into ranked display rows against
// the dictionary that owns the ids (store-local or shard-global).
func topPublisherRows(dict *store.Dictionary, ids []int32, counts []int64) []PublisherRow {
	out := make([]PublisherRow, len(ids))
	for i := range ids {
		out[i] = PublisherRow{Rank: i + 1, Source: dict.Name(ids[i]), Articles: counts[i]}
	}
	return out
}

func defectRows(rep *gdelt.ValidationReport) []Defect {
	out := make([]Defect, 0, len(rep.Counts))
	for c, n := range rep.Counts {
		out = append(out, Defect{Class: gdelt.DefectClass(c).String(), Count: n})
	}
	return out
}

func eventSizeResult(d queries.EventSizeDistribution) EventSizeResult {
	return EventSizeResult{Counts: d.Counts, Alpha: d.Fit.Alpha, R2: d.Fit.R2}
}

func countryResult(cr *queries.CountryReport, k int) CountryResult {
	k = clampK(k, len(cr.TopReported))
	k = clampK(k, len(cr.TopPublishing))
	rows := cr.TopReported[:k]
	cols := cr.TopPublishing[:k]
	name := func(idx []int) []string {
		out := make([]string, len(idx))
		for i, c := range idx {
			out[i] = gdelt.Countries[c].Name
		}
		return out
	}
	cross := make([][]int64, k)
	pct := make([][]float64, k)
	co := make([][]float64, k)
	for i := 0; i < k; i++ {
		cross[i] = make([]int64, k)
		pct[i] = make([]float64, k)
		co[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			cross[i][j] = cr.Cross.At(rows[i], cols[j])
			pct[i][j] = cr.Fractions.At(rows[i], cols[j])
			co[i][j] = cr.CoReporting.At(cols[i], cols[j])
		}
	}
	return CountryResult{
		Reported:    name(rows),
		Publishing:  name(cols),
		Cross:       cross,
		Percent:     pct,
		CoReporting: co,
	}
}

func followResult(fr *queries.FollowReporting) FollowResult {
	f := make([][]float64, len(fr.Sources))
	for i := range f {
		f[i] = append([]float64(nil), fr.F.Row(i)...)
	}
	return FollowResult{Names: fr.Names, F: f, ColSums: fr.ColSums}
}

func coreportResult(co *queries.CoReporting) CoReportResult {
	jac := make([][]float64, len(co.Sources))
	for i := range jac {
		jac[i] = append([]float64(nil), co.Jaccard.Row(i)...)
	}
	return CoReportResult{Names: co.Names, Jaccard: jac}
}

func init() {
	register(&Descriptor{
		Kind: "stats",
		Help: "dataset summary statistics (Table I)",
		Run: func(e *engine.Engine, p Params) (any, error) {
			return queries.Dataset(e), nil
		},
		RunSharded: func(v *shard.View, p Params) (any, error) {
			return v.Dataset(), nil
		},
	})

	register(&Descriptor{
		Kind: "defects",
		Help: "input defect classes observed during conversion (Table II)",
		Run: func(e *engine.Engine, p Params) (any, error) {
			return defectRows(e.DB().Report), nil
		},
		RunSharded: func(v *shard.View, p Params) (any, error) {
			return defectRows(v.DB().Report()), nil
		},
	})

	register(&Descriptor{
		Kind:       "top-publishers",
		Help:       "k most productive publishers by article count",
		Params:     []ParamSpec{kParam("number of publishers")},
		BenchPanel: true,
		Run: func(e *engine.Engine, p Params) (any, error) {
			k := clampK(p.Int("k"), e.DB().Sources.Len())
			ids, counts := queries.TopPublishers(e, k)
			return topPublisherRows(e.DB().Sources, ids, counts), nil
		},
		RunSharded: func(v *shard.View, p Params) (any, error) {
			k := clampK(p.Int("k"), v.DB().Sources().Len())
			ids, counts := v.TopPublishers(k)
			return topPublisherRows(v.DB().Sources(), ids, counts), nil
		},
	})

	register(&Descriptor{
		Kind:   "top-events",
		Help:   "k most reported events (Table III)",
		Params: []ParamSpec{kParam("number of events")},
		Run: func(e *engine.Engine, p Params) (any, error) {
			return queries.TopEvents(e, clampK(p.Int("k"), e.DB().Events.Len())), nil
		},
		RunSharded: func(v *shard.View, p Params) (any, error) {
			return v.TopEvents(clampK(p.Int("k"), v.DB().EventCount())), nil
		},
	})

	register(&Descriptor{
		Kind: "event-sizes",
		Help: "event size distribution with power-law fit (Figure 2)",
		Run: func(e *engine.Engine, p Params) (any, error) {
			return eventSizeResult(queries.EventSizes(e, 2)), nil
		},
		RunSharded: func(v *shard.View, p Params) (any, error) {
			return eventSizeResult(v.EventSizes(2)), nil
		},
	})

	register(&Descriptor{
		Kind: "country",
		Help: "aggregated country cross-/co-reporting query (Tables V-VII)",
		Params: []ParamSpec{{Name: "k", Type: IntParam, Default: "10", Max: len(gdelt.Countries),
			Help: "matrix corner size"}},
		BenchPanel: true,
		Run: func(e *engine.Engine, p Params) (any, error) {
			cr, err := queries.CountryQuery(e)
			if err != nil {
				return nil, err
			}
			return countryResult(cr, p.Int("k")), nil
		},
		RunSharded: func(v *shard.View, p Params) (any, error) {
			cr, err := v.CountryQuery()
			if err != nil {
				return nil, err
			}
			return countryResult(cr, p.Int("k")), nil
		},
	})

	register(&Descriptor{
		Kind:   "follow",
		Help:   "follow-reporting fractions among top publishers (Table IV)",
		Params: []ParamSpec{kParam("number of publishers")},
		Run: func(e *engine.Engine, p Params) (any, error) {
			k := clampK(p.Int("k"), e.DB().Sources.Len())
			ids, _ := queries.TopPublishers(e, k)
			return followResult(queries.FollowReport(e, ids)), nil
		},
		RunSharded: func(v *shard.View, p Params) (any, error) {
			k := clampK(p.Int("k"), v.DB().Sources().Len())
			ids, _ := v.TopPublishers(k)
			return followResult(v.FollowReport(ids)), nil
		},
	})

	register(&Descriptor{
		Kind:   "coreport",
		Help:   "co-reporting Jaccard matrix among top publishers",
		Params: []ParamSpec{kParam("number of publishers")},
		Run: func(e *engine.Engine, p Params) (any, error) {
			k := clampK(p.Int("k"), e.DB().Sources.Len())
			ids, _ := queries.TopPublishers(e, k)
			co, err := queries.CoReport(e, ids)
			if err != nil {
				return nil, err
			}
			return coreportResult(co), nil
		},
		RunSharded: func(v *shard.View, p Params) (any, error) {
			k := clampK(p.Int("k"), v.DB().Sources().Len())
			ids, _ := v.TopPublishers(k)
			co, err := v.CoReport(ids)
			if err != nil {
				return nil, err
			}
			return coreportResult(co), nil
		},
	})

	register(&Descriptor{
		Kind:   "delays",
		Help:   "publishing delay statistics of top publishers (Table VIII)",
		Params: []ParamSpec{kParam("number of publishers")},
		Run: func(e *engine.Engine, p Params) (any, error) {
			k := clampK(p.Int("k"), e.DB().Sources.Len())
			ids, _ := queries.TopPublishers(e, k)
			return queries.PublisherDelays(e, ids), nil
		},
		RunSharded: func(v *shard.View, p Params) (any, error) {
			k := clampK(p.Int("k"), v.DB().Sources().Len())
			ids, _ := v.TopPublishers(k)
			return v.PublisherDelays(ids), nil
		},
	})

	register(&Descriptor{
		Kind: "quarterly-delay",
		Help: "mean publishing delay per quarter (Figure 10)",
		Run: func(e *engine.Engine, p Params) (any, error) {
			return queries.QuarterlyDelays(e), nil
		},
		RunSharded: func(v *shard.View, p Params) (any, error) {
			return v.QuarterlyDelays(), nil
		},
	})

	register(&Descriptor{
		Kind:       "series-articles",
		Help:       "articles per quarter (Figure 4)",
		BenchPanel: true,
		Run: func(e *engine.Engine, p Params) (any, error) {
			return queries.ArticlesPerQuarter(e), nil
		},
		RunSharded: func(v *shard.View, p Params) (any, error) {
			return v.ArticlesPerQuarter(), nil
		},
	})

	register(&Descriptor{
		Kind: "series-events",
		Help: "events per quarter (Figure 5)",
		Run: func(e *engine.Engine, p Params) (any, error) {
			return queries.EventsPerQuarter(e), nil
		},
		RunSharded: func(v *shard.View, p Params) (any, error) {
			return v.EventsPerQuarter(), nil
		},
	})

	register(&Descriptor{
		Kind:       "series-active-sources",
		Help:       "active sources per quarter (Figure 6)",
		BenchPanel: true,
		Run: func(e *engine.Engine, p Params) (any, error) {
			return queries.ActiveSourcesPerQuarter(e), nil
		},
		RunSharded: func(v *shard.View, p Params) (any, error) {
			return v.ActiveSourcesPerQuarter(), nil
		},
	})

	register(&Descriptor{
		Kind:       "series-slow-articles",
		Help:       "slow articles (delay > 1 interval) per quarter (Figure 11)",
		BenchPanel: true,
		Run: func(e *engine.Engine, p Params) (any, error) {
			return queries.SlowArticlesPerQuarter(e), nil
		},
		RunSharded: func(v *shard.View, p Params) (any, error) {
			return v.SlowArticlesPerQuarter(), nil
		},
	})

	register(&Descriptor{
		Kind: "wildfires",
		Help: "fastest-spreading events by distinct early sources",
		Params: []ParamSpec{
			{Name: "window", Type: IntParam, Default: "8", Max: 1 << 20,
				Help: "early window in capture intervals"},
			{Name: "min", Type: IntParam, Default: "5", Max: 1 << 20,
				Help: "minimum distinct sources in the window"},
			{Name: "k", Type: IntParam, Default: "10", Max: 1000,
				Help: "number of events"},
		},
		Run: func(e *engine.Engine, p Params) (any, error) {
			return queries.FastSpreadingEvents(e, int32(p.Int("window")), p.Int("min"), p.Int("k")), nil
		},
		RunSharded: func(v *shard.View, p Params) (any, error) {
			return v.FastSpreadingEvents(int32(p.Int("window")), p.Int("min"), p.Int("k")), nil
		},
	})

	register(&Descriptor{
		Kind:   "count",
		Help:   "count articles matching a filter expression",
		Params: []ParamSpec{whereParam()},
		Run: func(e *engine.Engine, p Params) (any, error) {
			expr := p.Str("where")
			n, err := queries.CountWhere(e, expr)
			if err != nil {
				return nil, BadParam(err)
			}
			return CountResult{Where: expr, Articles: n}, nil
		},
		RunSharded: func(v *shard.View, p Params) (any, error) {
			expr := p.Str("where")
			n, err := v.CountWhere(expr)
			if err != nil {
				return nil, BadParam(err)
			}
			return CountResult{Where: expr, Articles: n}, nil
		},
	})

	register(&Descriptor{
		Kind:   "filtered-publishers",
		Help:   "top publishers among articles matching a filter expression",
		Params: []ParamSpec{whereParam(), kParam("number of publishers")},
		Run: func(e *engine.Engine, p Params) (any, error) {
			k := clampK(p.Int("k"), e.DB().Sources.Len())
			ids, counts, err := queries.TopPublishersWhere(e, p.Str("where"), k)
			if err != nil {
				return nil, BadParam(err)
			}
			return topPublisherRows(e.DB().Sources, ids, counts), nil
		},
		RunSharded: func(v *shard.View, p Params) (any, error) {
			k := clampK(p.Int("k"), v.DB().Sources().Len())
			ids, counts, err := v.TopPublishersWhere(p.Str("where"), k)
			if err != nil {
				return nil, BadParam(err)
			}
			return topPublisherRows(v.DB().Sources(), ids, counts), nil
		},
	})

	register(&Descriptor{
		Kind:   "filtered-series",
		Help:   "articles per quarter among articles matching a filter expression",
		Params: []ParamSpec{whereParam()},
		Run: func(e *engine.Engine, p Params) (any, error) {
			s, err := queries.ArticlesPerQuarterWhere(e, p.Str("where"))
			if err != nil {
				return nil, BadParam(err)
			}
			return s, nil
		},
		RunSharded: func(v *shard.View, p Params) (any, error) {
			s, err := v.ArticlesPerQuarterWhere(p.Str("where"))
			if err != nil {
				return nil, BadParam(err)
			}
			return s, nil
		},
	})

	register(&Descriptor{
		Kind:     "themes",
		Help:     "most frequent GKG themes",
		Params:   []ParamSpec{{Name: "k", Type: IntParam, Default: "10", Max: 1000, Help: "number of themes"}},
		NeedsGKG: true,
		Run: func(e *engine.Engine, p Params) (any, error) {
			return queries.TopThemes(e, p.Int("k"))
		},
		RunSharded: func(v *shard.View, p Params) (any, error) {
			return v.TopThemes(p.Int("k"))
		},
	})

	register(&Descriptor{
		Kind: "theme-trends",
		Help: "per-quarter article counts of named GKG themes",
		Params: []ParamSpec{{Name: "theme", Type: StringListParam, Required: true,
			Help: "theme name (repeatable)"}},
		NeedsGKG: true,
		Run: func(e *engine.Engine, p Params) (any, error) {
			return queries.ThemeTrends(e, p.Strings("theme"))
		},
		RunSharded: func(v *shard.View, p Params) (any, error) {
			return v.ThemeTrends(p.Strings("theme"))
		},
	})

	register(&Descriptor{
		Kind:     "translated-share",
		Help:     "per-quarter share of machine-translated articles",
		NeedsGKG: true,
		Run: func(e *engine.Engine, p Params) (any, error) {
			labels, share, err := queries.TranslatedShare(e)
			if err != nil {
				return nil, err
			}
			return TranslatedShareResult{Labels: labels, Share: share}, nil
		},
		RunSharded: func(v *shard.View, p Params) (any, error) {
			labels, share, err := v.TranslatedShare()
			if err != nil {
				return nil, err
			}
			return TranslatedShareResult{Labels: labels, Share: share}, nil
		},
	})

	// Legacy spellings kept alive for old CLI invocations and docs.
	registerAlias("delay", "delays")
	registerAlias("quarterly", "quarterly-delay")
	registerAlias("publishers", "top-publishers")
	registerAlias("events", "top-events")
}
