package stream

import (
	"os"
	"path/filepath"
	"testing"
)

// TestCheckpointWriteSyncsParentDir is the regression test for the
// checkpoint durability fix: after the atomic rename, WriteFile must fsync
// the parent directory exactly once, and only after the renamed file is in
// place. An unsynced rename is allowed to roll back on power loss,
// resurrecting the previous checkpoint and silently double-counting every
// chunk replayed since — the companion failure mode to the torn-write test
// next door.
func TestCheckpointWriteSyncsParentDir(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "monitor.ckpt")
	cp := tornMonitor(t).Checkpoint()

	var synced []string
	var sawFinalAtSync bool
	orig := fsyncDir
	fsyncDir = func(d string) error {
		synced = append(synced, d)
		// The rename must already have happened when the directory is
		// synced — syncing first then renaming leaves the rename itself
		// volatile.
		if _, err := os.Stat(path); err == nil {
			sawFinalAtSync = true
		}
		if _, err := os.Stat(path + ".tmp"); err == nil {
			t.Error("temp checkpoint still present at directory-sync time")
		}
		return orig(d)
	}
	defer func() { fsyncDir = orig }()

	if err := cp.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if len(synced) != 1 {
		t.Fatalf("parent directory synced %d times, want exactly 1", len(synced))
	}
	if synced[0] != dir {
		t.Fatalf("synced %q, want the checkpoint's parent %q", synced[0], dir)
	}
	if !sawFinalAtSync {
		t.Fatal("directory sync ran before the rename; the rename is not durable")
	}

	// The written checkpoint still round-trips.
	back, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromCheckpoint(back); err != nil {
		t.Fatal(err)
	}

	// A sync failure must surface, not be swallowed: callers treat a
	// checkpoint write error as "do not advance past this point".
	fsyncDir = func(string) error { return os.ErrPermission }
	if err := cp.WriteFile(path); err == nil {
		t.Fatal("WriteFile swallowed a directory-sync failure")
	}
}
