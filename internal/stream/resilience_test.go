package stream

import (
	"math"
	"path/filepath"
	"strings"
	"testing"

	"gdeltmine/internal/gdelt"
)

// ivTS returns the timestamp of interval offset iv from the test base.
func ivTS(base gdelt.Timestamp, iv int64) gdelt.Timestamp {
	return gdelt.IntervalStart(base.IntervalIndex() + iv)
}

// mention builds a synthetic mention at interval offset iv for an event
// ignited at interval offset evIv.
func mention(base gdelt.Timestamp, id int64, evIv, iv int64, source string) gdelt.Mention {
	return gdelt.Mention{
		GlobalEventID: id,
		EventTime:     ivTS(base, evIv),
		MentionTime:   ivTS(base, iv),
		SourceName:    source,
	}
}

const testBase = gdelt.Timestamp(20150218000000)

func TestGapDetection(t *testing.T) {
	m := NewMonitor(testBase, Config{})
	// Chunks arrive every interval; interval 2 never shows up.
	for _, iv := range []int64{0, 1, 3, 4} {
		m.MarkChunk(ivTS(testBase, iv))
	}
	gaps := m.Gaps()
	if len(gaps) != 1 || gaps[0] != ivTS(testBase, 2) {
		t.Fatalf("gaps = %v, want [%v]", gaps, ivTS(testBase, 2))
	}
	if got := m.Snapshot().MissingChunks; got != 1 {
		t.Fatalf("MissingChunks = %d, want 1", got)
	}
	if m.SeenChunk(ivTS(testBase, 2)) {
		t.Fatal("SeenChunk reported an unmarked interval")
	}

	// Catch-up: the late chunk arrives, closing the gap.
	m.MarkChunk(ivTS(testBase, 2))
	if gaps := m.Gaps(); len(gaps) != 0 {
		t.Fatalf("gaps after catch-up = %v, want none", gaps)
	}
	if !m.SeenChunk(ivTS(testBase, 2)) {
		t.Fatal("SeenChunk missed a marked interval")
	}
}

func TestGapDetectionConfiguredSpacing(t *testing.T) {
	// Chunks every 4 intervals; two consecutive arrivals lost.
	m := NewMonitor(testBase, Config{ChunkIntervals: 4})
	for _, iv := range []int64{0, 4, 16} {
		m.MarkChunk(ivTS(testBase, iv))
	}
	gaps := m.Gaps()
	want := []gdelt.Timestamp{ivTS(testBase, 8), ivTS(testBase, 12)}
	if len(gaps) != len(want) || gaps[0] != want[0] || gaps[1] != want[1] {
		t.Fatalf("gaps = %v, want %v", gaps, want)
	}
}

func TestGraceWindowAcceptsLateMentions(t *testing.T) {
	m := NewMonitor(testBase, Config{GraceIntervals: 4, MinSources: 2})
	for i, iv := range []int64{0, 5, 6} {
		mn := mention(testBase, int64(i+1), iv, iv, "a.example")
		if err := m.ObserveMention(&mn); err != nil {
			t.Fatal(err)
		}
	}
	// A mention 3 intervals behind the clock: inside grace, accepted.
	late := mention(testBase, 10, 3, 3, "late.example")
	if err := m.ObserveMention(&late); err != nil {
		t.Fatalf("late mention inside grace rejected: %v", err)
	}
	snap := m.Snapshot()
	if snap.LateArticles != 1 {
		t.Fatalf("LateArticles = %d, want 1", snap.LateArticles)
	}
	if snap.Interval != 6 {
		t.Fatalf("clock regressed: interval %d, want 6", snap.Interval)
	}
	if snap.Articles != 4 {
		t.Fatalf("Articles = %d, want 4", snap.Articles)
	}

	// A mention beyond grace is an error and breaks the stream.
	m2 := NewMonitor(testBase, Config{GraceIntervals: 2})
	ahead := mention(testBase, 1, 8, 8, "a.example")
	if err := m2.ObserveMention(&ahead); err != nil {
		t.Fatal(err)
	}
	deep := mention(testBase, 2, 1, 1, "b.example")
	err := m2.ObserveMention(&deep)
	if err == nil || !strings.Contains(err.Error(), "grace") {
		t.Fatalf("deep regression err = %v, want grace-window error", err)
	}
	if m2.Err() == nil {
		t.Fatal("Err() not set after deep regression")
	}

	// Strict mode (zero grace) rejects any regression — legacy behavior.
	m3 := NewMonitor(testBase, Config{})
	fwd := mention(testBase, 1, 2, 2, "a.example")
	if err := m3.ObserveMention(&fwd); err != nil {
		t.Fatal(err)
	}
	back := mention(testBase, 2, 1, 1, "b.example")
	if err := m3.ObserveMention(&back); err == nil {
		t.Fatal("strict monitor accepted a regression")
	}
}

func TestLateMentionStillCountsTowardAlert(t *testing.T) {
	m := NewMonitor(testBase, Config{Window: 8, MinSources: 2, GraceIntervals: 4})
	first := mention(testBase, 7, 2, 3, "a.example")
	if err := m.ObserveMention(&first); err != nil {
		t.Fatal(err)
	}
	// Clock moves ahead.
	other := mention(testBase, 8, 5, 5, "b.example")
	if err := m.ObserveMention(&other); err != nil {
		t.Fatal(err)
	}
	// A late mention of event 7 from a second source fires the alert.
	catchup := mention(testBase, 7, 2, 4, "c.example")
	if err := m.ObserveMention(&catchup); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if len(snap.Alerts) != 1 || snap.Alerts[0].EventID != 7 {
		t.Fatalf("alerts = %+v, want one for event 7", snap.Alerts)
	}
}

// TestCheckpointResume is the restart drill: a monitor interrupted mid-feed
// and restored from its checkpoint must end in exactly the state of an
// uninterrupted monitor, and must know which chunks it already consumed.
func TestCheckpointResume(t *testing.T) {
	c := streamCorpus(t)
	base := gdelt.Timestamp(c.World.Cfg.Start)
	cfg := Config{Window: 16, MinSources: 3, GraceIntervals: 8, ChunkIntervals: 1}

	full := NewMonitor(base, cfg)
	half := NewMonitor(base, cfg)
	for i := range c.Events {
		ev := c.EventRecord(i)
		full.ObserveEvent(&ev)
		half.ObserveEvent(&ev)
	}
	cut := len(c.Mentions) / 2
	for j := range c.Mentions {
		mn := c.MentionRecord(j)
		if err := full.ObserveMention(&mn); err != nil {
			t.Fatal(err)
		}
		if j < cut {
			mn2 := c.MentionRecord(j)
			if err := half.ObserveMention(&mn2); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, iv := range []int64{0, 1, 2} {
		full.MarkChunk(ivTS(base, iv))
		half.MarkChunk(ivTS(base, iv))
	}

	// Round-trip the interrupted monitor through a checkpoint file.
	path := filepath.Join(t.TempDir(), "stream.ckpt")
	if err := half.Checkpoint().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	cp, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := FromCheckpoint(cp)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.SeenChunk(ivTS(base, 2)) || resumed.SeenChunk(ivTS(base, 3)) {
		t.Fatal("resumed monitor lost the chunk ledger")
	}

	// Replay the unseen tail into the resumed monitor.
	for j := cut; j < len(c.Mentions); j++ {
		mn := c.MentionRecord(j)
		if err := resumed.ObserveMention(&mn); err != nil {
			t.Fatal(err)
		}
	}

	got, want := resumed.Snapshot(), full.Snapshot()
	if got.Interval != want.Interval || got.Events != want.Events ||
		got.Articles != want.Articles || got.SlowArticles != want.SlowArticles ||
		got.TrackedEvents != want.TrackedEvents || got.LateArticles != want.LateArticles ||
		got.MissingChunks != want.MissingChunks {
		t.Fatalf("resumed snapshot %+v != uninterrupted %+v", got, want)
	}
	if math.IsNaN(got.ApproxMedianDelay) != math.IsNaN(want.ApproxMedianDelay) ||
		(!math.IsNaN(got.ApproxMedianDelay) && got.ApproxMedianDelay != want.ApproxMedianDelay) {
		t.Fatalf("median delay %v != %v", got.ApproxMedianDelay, want.ApproxMedianDelay)
	}
	if len(got.Alerts) != len(want.Alerts) {
		t.Fatalf("alerts %d != %d", len(got.Alerts), len(want.Alerts))
	}
	for i := range got.Alerts {
		if got.Alerts[i] != want.Alerts[i] {
			t.Fatalf("alert %d: %+v != %+v", i, got.Alerts[i], want.Alerts[i])
		}
	}

	gotPub, wantPub := resumed.TopPublishers(10), full.TopPublishers(10)
	if len(gotPub) != len(wantPub) {
		t.Fatalf("publishers %d != %d", len(gotPub), len(wantPub))
	}
	for i := range gotPub {
		if gotPub[i] != wantPub[i] {
			t.Fatalf("publisher %d: %+v != %+v", i, gotPub[i], wantPub[i])
		}
	}
}

func TestCheckpointVersionMismatch(t *testing.T) {
	m := NewMonitor(testBase, Config{})
	cp := m.Checkpoint()
	cp.Version = 99
	if _, err := FromCheckpoint(cp); err == nil {
		t.Fatal("FromCheckpoint accepted an unknown version")
	}
}
