package stream

import (
	"sort"
	"testing"

	"gdeltmine/internal/convert"
	"gdeltmine/internal/engine"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/queries"
)

func sortInt64(xs []int64) {
	sort.Slice(xs, func(a, b int) bool { return xs[a] < xs[b] })
}

func streamCorpus(t testing.TB) *gen.Corpus {
	t.Helper()
	c, err := gen.Generate(gen.Small())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestMonitorTotalsMatchBatch(t *testing.T) {
	c := streamCorpus(t)
	cfg := Config{Window: 16, MinSources: 3}
	m := NewMonitor(gdelt.Timestamp(c.World.Cfg.Start), cfg)
	for i := range c.Events {
		ev := c.EventRecord(i)
		m.ObserveEvent(&ev)
	}
	for j := range c.Mentions {
		mn := c.MentionRecord(j)
		if err := m.ObserveMention(&mn); err != nil {
			t.Fatal(err)
		}
	}
	if m.Err() != nil {
		t.Fatal(m.Err())
	}
	snap := m.Snapshot()
	if snap.Articles != int64(len(c.Mentions)) {
		t.Fatalf("articles %d want %d", snap.Articles, len(c.Mentions))
	}
	if snap.Events != int64(len(c.Events)) {
		t.Fatalf("events %d want %d", snap.Events, len(c.Events))
	}

	// Slow-article count matches the batch engine.
	res, err := convert.FromCorpus(c)
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(res.DB)
	batchSlow := e.CountMentions(func(row int) bool {
		return int64(res.DB.Mentions.Delay[row]) > gdelt.IntervalsPerDay
	})
	if snap.SlowArticles != batchSlow {
		t.Fatalf("slow articles %d want %d", snap.SlowArticles, batchSlow)
	}

	// The streaming median estimate lands near the exact batch median.
	exact := make([]int64, res.DB.Mentions.Len())
	for i, d := range res.DB.Mentions.Delay {
		exact[i] = int64(d)
	}
	sortInt64(exact)
	batchMedian := float64(exact[len(exact)/2])
	if est := snap.ApproxMedianDelay; est < batchMedian*0.5 || est > batchMedian*2 {
		t.Fatalf("P2 median %v vs exact %v", est, batchMedian)
	}

	// Top publishers match the batch ranking.
	top := m.TopPublishers(5)
	ids, counts := queries.TopPublishers(e, 5)
	for i := range top {
		if top[i].Source != res.DB.Sources.Name(ids[i]) || top[i].Articles != counts[i] {
			t.Fatalf("rank %d: stream %v batch %s/%d", i, top[i], res.DB.Sources.Name(ids[i]), counts[i])
		}
	}
}

func TestMonitorAlertsMatchBatchWildfires(t *testing.T) {
	c := streamCorpus(t)
	const window, minSources = 16, 5
	m := NewMonitor(gdelt.Timestamp(c.World.Cfg.Start), Config{Window: window, MinSources: minSources})
	for j := range c.Mentions {
		mn := c.MentionRecord(j)
		if err := m.ObserveMention(&mn); err != nil {
			t.Fatal(err)
		}
	}
	alerted := map[int64]bool{}
	for _, a := range m.Snapshot().Alerts {
		if alerted[a.EventID] {
			t.Fatalf("event %d alerted twice", a.EventID)
		}
		alerted[a.EventID] = true
		if a.Sources != minSources {
			t.Fatalf("alert fired at %d sources, want exactly the threshold %d", a.Sources, minSources)
		}
	}

	// Ground truth: the batch wildfire query with the same parameters.
	res, err := convert.FromCorpus(c)
	if err != nil {
		t.Fatal(err)
	}
	e := engine.New(res.DB)
	batch := queries.FastSpreadingEvents(e, window, minSources, 1<<30)
	batchSet := map[int64]bool{}
	for _, w := range batch {
		batchSet[w.EventID] = true
	}
	if len(batchSet) == 0 {
		t.Fatal("no batch wildfires; test corpus too small")
	}
	for id := range batchSet {
		if !alerted[id] {
			t.Fatalf("batch wildfire %d not alerted by the stream", id)
		}
	}
	for id := range alerted {
		if !batchSet[id] {
			t.Fatalf("stream alerted %d which batch does not consider a wildfire", id)
		}
	}
}

func TestMonitorEviction(t *testing.T) {
	start := gdelt.Timestamp(20150218000000)
	m := NewMonitor(start, Config{Window: 4, MinSources: 2})
	mk := func(event int64, evIv, mnIv int64, src string) *gdelt.Mention {
		return &gdelt.Mention{
			GlobalEventID: event,
			EventTime:     gdelt.IntervalStart(evIv),
			MentionTime:   gdelt.IntervalStart(mnIv),
			MentionType:   1,
			SourceName:    src,
		}
	}
	if err := m.ObserveMention(mk(1, 0, 0, "a.com")); err != nil {
		t.Fatal(err)
	}
	if m.Snapshot().TrackedEvents != 1 {
		t.Fatal("event 1 not tracked")
	}
	// Far later mention evicts event 1 from the horizon.
	if err := m.ObserveMention(mk(2, 100, 100, "b.com")); err != nil {
		t.Fatal(err)
	}
	snap := m.Snapshot()
	if snap.TrackedEvents != 1 {
		t.Fatalf("tracked %d after eviction", snap.TrackedEvents)
	}
	// A late article on event 1 (outside the window) neither re-tracks it
	// nor alerts.
	if err := m.ObserveMention(mk(1, 0, 101, "c.com")); err != nil {
		t.Fatal(err)
	}
	if m.Snapshot().TrackedEvents != 1 || len(m.Snapshot().Alerts) != 0 {
		t.Fatal("late article affected wildfire state")
	}
}

func TestMonitorAlertThresholdExact(t *testing.T) {
	start := gdelt.Timestamp(20150218000000)
	m := NewMonitor(start, Config{Window: 8, MinSources: 3})
	mk := func(src string, iv int64) *gdelt.Mention {
		return &gdelt.Mention{GlobalEventID: 7,
			EventTime:   gdelt.IntervalStart(0),
			MentionTime: gdelt.IntervalStart(iv),
			MentionType: 1, SourceName: src}
	}
	m.ObserveMention(mk("a.com", 0))
	m.ObserveMention(mk("a.com", 1)) // duplicate source: no progress
	m.ObserveMention(mk("b.com", 2))
	if len(m.Snapshot().Alerts) != 0 {
		t.Fatal("premature alert")
	}
	m.ObserveMention(mk("c.com", 3))
	alerts := m.Snapshot().Alerts
	if len(alerts) != 1 || alerts[0].EventID != 7 || alerts[0].FiredAt != 3 {
		t.Fatalf("alerts %+v", alerts)
	}
	// Further coverage does not re-alert.
	m.ObserveMention(mk("d.com", 4))
	if len(m.Snapshot().Alerts) != 1 {
		t.Fatal("re-alerted")
	}
}

func TestMonitorRejectsTimeRegression(t *testing.T) {
	start := gdelt.Timestamp(20150218000000)
	m := NewMonitor(start, Config{})
	ok := &gdelt.Mention{GlobalEventID: 1, EventTime: gdelt.IntervalStart(10),
		MentionTime: gdelt.IntervalStart(10), MentionType: 1, SourceName: "a"}
	if err := m.ObserveMention(ok); err != nil {
		t.Fatal(err)
	}
	bad := &gdelt.Mention{GlobalEventID: 1, EventTime: gdelt.IntervalStart(5),
		MentionTime: gdelt.IntervalStart(5), MentionType: 1, SourceName: "a"}
	if err := m.ObserveMention(bad); err == nil {
		t.Fatal("regression accepted")
	}
	if m.Err() == nil {
		t.Fatal("Err not recorded")
	}
	// The bad mention was dropped.
	if m.Snapshot().Articles != 1 {
		t.Fatalf("articles %d", m.Snapshot().Articles)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Window != 8 || c.MinSources != 5 || c.SlowThreshold != gdelt.IntervalsPerDay {
		t.Fatalf("defaults %+v", c)
	}
}
