// Package stream implements the real-time monitoring mode: a Monitor
// consumes the GDELT feed chunk by chunk (the 15-minute update cycle) and
// maintains incremental statistics plus a live digital-wildfire detector.
// It is the streaming counterpart of the batch system — where Lu and
// Szymanski (Section II) stream GDELT for viral-event prediction, this
// monitor incrementally tracks exactly the quantities the batch queries
// compute, so a live deployment can alert within one capture interval of a
// wildfire igniting.
package stream

import (
	"fmt"
	"sort"

	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/stats"
)

// Config tunes the monitor.
type Config struct {
	// Window is the wildfire detection window in capture intervals: only
	// articles within Window of the event ignition count toward an alert.
	// Zero means 8 (two hours).
	Window int32
	// MinSources is the distinct-source threshold that fires an alert.
	// Zero means 5.
	MinSources int
	// SlowThreshold classifies slow articles, in intervals. Zero means 96
	// (the 24-hour cycle boundary of Figure 11).
	SlowThreshold int64
}

func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = 8
	}
	if c.MinSources == 0 {
		c.MinSources = 5
	}
	if c.SlowThreshold == 0 {
		c.SlowThreshold = gdelt.IntervalsPerDay
	}
	return c
}

// Alert is a fired wildfire alarm.
type Alert struct {
	// EventID is the global id of the igniting event.
	EventID int64
	// FiredAt is the capture interval at which the threshold was crossed.
	FiredAt int32
	// Sources is the distinct-source count at firing time (== MinSources).
	Sources int
}

// PublisherCount pairs a source with its running article count.
type PublisherCount struct {
	Source   string
	Articles int64
}

// Snapshot is the monitor's current aggregate state.
type Snapshot struct {
	// Interval is the latest capture interval observed.
	Interval int32
	// Events and Articles are running totals.
	Events, Articles int64
	// SlowArticles counts articles with delay above the slow threshold.
	SlowArticles int64
	// TrackedEvents is the number of events currently inside the wildfire
	// horizon (a memory gauge).
	TrackedEvents int
	// ApproxMedianDelay is the running P² estimate of the median publishing
	// delay in intervals (O(1) memory; NaN before any articles).
	ApproxMedianDelay float64
	// Alerts lists fired wildfire alarms in firing order.
	Alerts []Alert
}

// eventState tracks one event inside the wildfire horizon.
type eventState struct {
	ignition int32
	sources  map[string]struct{}
	alerted  bool
}

// Monitor incrementally aggregates a time-ordered mention stream.
type Monitor struct {
	cfg  Config
	base int64 // interval index of the archive start

	now          int32
	events       int64
	articles     int64
	slow         int64
	medianDelay  *stats.P2Quantile
	perSource    map[string]int64
	tracked      map[int64]*eventState
	alerts       []Alert
	evictedUpTo  int32
	streamBroken error
}

// NewMonitor returns a monitor for a feed starting at the given timestamp.
func NewMonitor(start gdelt.Timestamp, cfg Config) *Monitor {
	return &Monitor{
		cfg:         cfg.withDefaults(),
		base:        start.IntervalIndex(),
		medianDelay: stats.NewP2Quantile(0.5),
		perSource:   make(map[string]int64),
		tracked:     make(map[int64]*eventState),
	}
}

// ObserveEvent folds a newly published event row into the running totals.
func (m *Monitor) ObserveEvent(ev *gdelt.Event) {
	m.events++
}

// ObserveMention folds one article. Mentions must arrive in non-decreasing
// capture-interval order (the natural order of the 15-minute feed); a
// regression is reported as an error and the mention is dropped.
func (m *Monitor) ObserveMention(mn *gdelt.Mention) error {
	iv := int32(mn.MentionTime.IntervalIndex() - m.base)
	if iv < m.now {
		err := fmt.Errorf("stream: mention at interval %d after clock reached %d", iv, m.now)
		m.streamBroken = err
		return err
	}
	if iv > m.now {
		m.advance(iv)
	}
	m.articles++
	m.perSource[mn.SourceName]++
	delay := mn.Delay()
	m.medianDelay.Add(float64(delay))
	if delay > m.cfg.SlowThreshold {
		m.slow++
	}

	// Wildfire tracking: only articles within the window of the event's
	// ignition count.
	evIv := int32(mn.EventTime.IntervalIndex() - m.base)
	if iv-evIv >= m.cfg.Window {
		return nil
	}
	st, ok := m.tracked[mn.GlobalEventID]
	if !ok {
		st = &eventState{ignition: evIv, sources: make(map[string]struct{}, 4)}
		m.tracked[mn.GlobalEventID] = st
	}
	st.sources[mn.SourceName] = struct{}{}
	if !st.alerted && len(st.sources) >= m.cfg.MinSources {
		st.alerted = true
		m.alerts = append(m.alerts, Alert{EventID: mn.GlobalEventID, FiredAt: iv, Sources: len(st.sources)})
	}
	return nil
}

// advance moves the monitor clock forward and evicts events that fell out
// of the wildfire horizon, bounding tracked state to the active window.
func (m *Monitor) advance(iv int32) {
	m.now = iv
	cutoff := iv - m.cfg.Window
	if cutoff <= m.evictedUpTo {
		return
	}
	for id, st := range m.tracked {
		if st.ignition < cutoff {
			delete(m.tracked, id)
		}
	}
	m.evictedUpTo = cutoff
}

// Snapshot returns the current aggregate state.
func (m *Monitor) Snapshot() Snapshot {
	return Snapshot{
		Interval:          m.now,
		Events:            m.events,
		Articles:          m.articles,
		SlowArticles:      m.slow,
		TrackedEvents:     len(m.tracked),
		ApproxMedianDelay: m.medianDelay.Value(),
		Alerts:            append([]Alert(nil), m.alerts...),
	}
}

// TopPublishers returns the k most productive sources observed so far.
func (m *Monitor) TopPublishers(k int) []PublisherCount {
	out := make([]PublisherCount, 0, len(m.perSource))
	for s, n := range m.perSource {
		out = append(out, PublisherCount{Source: s, Articles: n})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Articles != out[b].Articles {
			return out[a].Articles > out[b].Articles
		}
		return out[a].Source < out[b].Source
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Err returns the first stream-order violation seen, if any.
func (m *Monitor) Err() error { return m.streamBroken }
