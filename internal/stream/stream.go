// Package stream implements the real-time monitoring mode: a Monitor
// consumes the GDELT feed chunk by chunk (the 15-minute update cycle) and
// maintains incremental statistics plus a live digital-wildfire detector.
// It is the streaming counterpart of the batch system — where Lu and
// Szymanski (Section II) stream GDELT for viral-event prediction, this
// monitor incrementally tracks exactly the quantities the batch queries
// compute, so a live deployment can alert within one capture interval of a
// wildfire igniting.
package stream

import (
	"fmt"
	"sort"

	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/obs"
	"gdeltmine/internal/shard"
	"gdeltmine/internal/stats"
	"gdeltmine/internal/store"
)

// Monitor observability: process-wide counters for the feed volume plus
// gauges describing the live monitor's health — how far the clock has run
// past the last marked chunk (chunk lag), how many expected intervals are
// still missing, and how much wildfire state is held. When several
// monitors run in one process (tests), the counters aggregate across them
// and the gauges reflect the most recent writer.
var (
	mArticles = obs.Default.Counter("stream_articles_total",
		"mentions folded into stream monitors")
	mLate = obs.Default.Counter("stream_late_articles_total",
		"late mentions accepted within the grace window")
	mAlerts = obs.Default.Counter("stream_alerts_total",
		"wildfire alerts fired")
	mTracked = obs.Default.Gauge("stream_tracked_events",
		"events currently inside the wildfire horizon")
	mChunkLag = obs.Default.Gauge("stream_chunk_lag_intervals",
		"monitor clock minus last marked chunk interval")
	mMissing = obs.Default.Gauge("stream_missing_chunks",
		"expected chunk intervals never marked (open gaps)")
)

// Config tunes the monitor.
type Config struct {
	// Window is the wildfire detection window in capture intervals: only
	// articles within Window of the event ignition count toward an alert.
	// Zero means 8 (two hours).
	Window int32
	// MinSources is the distinct-source threshold that fires an alert.
	// Zero means 5.
	MinSources int
	// SlowThreshold classifies slow articles, in intervals. Zero means 96
	// (the 24-hour cycle boundary of Figure 11).
	SlowThreshold int64
	// GraceIntervals tolerates late mentions: a mention up to this many
	// intervals behind the monitor clock (a gap chunk caught up on
	// arrival) is folded into the totals without moving the clock
	// backward. Zero means strict feed order — any regression is an
	// error, the pre-gap-handling behavior.
	GraceIntervals int32
	// ChunkIntervals is the expected spacing of chunk arrivals, for gap
	// detection. Zero infers it from the first two distinct chunk marks.
	ChunkIntervals int32
}

func (c Config) withDefaults() Config {
	if c.Window == 0 {
		c.Window = 8
	}
	if c.MinSources == 0 {
		c.MinSources = 5
	}
	if c.SlowThreshold == 0 {
		c.SlowThreshold = gdelt.IntervalsPerDay
	}
	return c
}

// Alert is a fired wildfire alarm.
type Alert struct {
	// EventID is the global id of the igniting event.
	EventID int64
	// FiredAt is the capture interval at which the threshold was crossed.
	FiredAt int32
	// Sources is the distinct-source count at firing time (== MinSources).
	Sources int
}

// PublisherCount pairs a source with its running article count.
type PublisherCount struct {
	Source   string
	Articles int64
}

// Snapshot is the monitor's current aggregate state.
type Snapshot struct {
	// Interval is the latest capture interval observed.
	Interval int32
	// Events and Articles are running totals.
	Events, Articles int64
	// SlowArticles counts articles with delay above the slow threshold.
	SlowArticles int64
	// TrackedEvents is the number of events currently inside the wildfire
	// horizon (a memory gauge).
	TrackedEvents int
	// LateArticles counts mentions accepted within the grace window after
	// the clock had already passed their interval (gap catch-up).
	LateArticles int64
	// MissingChunks is the number of expected chunk intervals with no
	// arrival so far (open gaps).
	MissingChunks int
	// ApproxMedianDelay is the running P² estimate of the median publishing
	// delay in intervals (O(1) memory; NaN before any articles).
	ApproxMedianDelay float64
	// Alerts lists fired wildfire alarms in firing order.
	Alerts []Alert
}

// eventState tracks one event inside the wildfire horizon.
type eventState struct {
	ignition int32
	sources  map[string]struct{}
	alerted  bool
}

// Monitor incrementally aggregates a time-ordered mention stream.
type Monitor struct {
	cfg  Config
	base int64 // interval index of the archive start

	now          int32
	events       int64
	articles     int64
	slow         int64
	late         int64
	medianDelay  *stats.P2Quantile
	perSource    map[string]int64
	tracked      map[int64]*eventState
	alerts       []Alert
	evictedUpTo  int32
	streamBroken error

	// Chunk-arrival ledger for gap detection: which chunk intervals have
	// been marked, and the observed span of marks.
	chunkSeen             map[int32]struct{}
	firstChunk, lastChunk int32
	haveChunks            bool

	// boundDB, when set, has its snapshot version bumped once per chunk
	// fold so result caches keyed on store.DB.Version stop serving answers
	// computed before the append.
	boundDB *store.DB
}

// BindStore ties the monitor to the store its stream extends: every
// MarkChunk (one folded feed chunk = one append) bumps the store's
// snapshot version, which is the invalidation signal of the query result
// cache. Pass nil to unbind.
func (m *Monitor) BindStore(db *store.DB) { m.boundDB = db }

// BindSharded ties the monitor to a sharded store. Stream appends always
// land in the time-ordered tail shard, so only the tail's version is
// bumped: cache entries whose window touches the tail go stale while
// results over cold shards stay warm (see shard.DB.StaleKey).
func (m *Monitor) BindSharded(s *shard.DB) { m.BindStore(s.Tail()) }

// NewMonitor returns a monitor for a feed starting at the given timestamp.
func NewMonitor(start gdelt.Timestamp, cfg Config) *Monitor {
	return &Monitor{
		cfg:         cfg.withDefaults(),
		base:        start.IntervalIndex(),
		medianDelay: stats.NewP2Quantile(0.5),
		perSource:   make(map[string]int64),
		tracked:     make(map[int64]*eventState),
		chunkSeen:   make(map[int32]struct{}),
	}
}

// MarkChunk records the arrival of the chunk covering the interval at ts.
// The feeder calls it once per chunk it manages to read — including late
// reads that resolve an earlier gap. Gaps() reports the expected intervals
// never marked.
func (m *Monitor) MarkChunk(ts gdelt.Timestamp) {
	iv := int32(ts.IntervalIndex() - m.base)
	if !m.haveChunks || iv < m.firstChunk {
		m.firstChunk = iv
	}
	if !m.haveChunks || iv > m.lastChunk {
		m.lastChunk = iv
	}
	m.haveChunks = true
	m.chunkSeen[iv] = struct{}{}
	if m.boundDB != nil {
		m.boundDB.BumpVersion()
	}
	mChunkLag.Set(float64(m.now - m.lastChunk))
}

// SeenChunk reports whether the chunk covering ts was already marked —
// the test a resumed monitor uses to replay only unseen intervals.
func (m *Monitor) SeenChunk(ts gdelt.Timestamp) bool {
	_, ok := m.chunkSeen[int32(ts.IntervalIndex()-m.base)]
	return ok
}

// Foldable reports whether a chunk starting at ts could still be folded:
// at or ahead of the clock, or behind it within the grace window. A
// resumed or catching-up feeder uses it to recognize gaps too old to
// recover — ObserveMention rejects clock regressions deeper than grace,
// so folding such a chunk would break the stream.
func (m *Monitor) Foldable(ts gdelt.Timestamp) bool {
	iv := int32(ts.IntervalIndex() - m.base)
	return m.now-iv <= m.cfg.GraceIntervals
}

// chunkSpacing returns the expected gap between chunk marks: the
// configured value, or the smallest observed spacing, or 0 when fewer than
// two distinct marks exist (no gap detection possible yet).
func (m *Monitor) chunkSpacing() int32 {
	if m.cfg.ChunkIntervals > 0 {
		return m.cfg.ChunkIntervals
	}
	spacing := int32(0)
	marks := m.sortedMarks()
	for i := 1; i < len(marks); i++ {
		if d := marks[i] - marks[i-1]; d > 0 && (spacing == 0 || d < spacing) {
			spacing = d
		}
	}
	return spacing
}

func (m *Monitor) sortedMarks() []int32 {
	marks := make([]int32, 0, len(m.chunkSeen))
	for iv := range m.chunkSeen {
		marks = append(marks, iv)
	}
	sort.Slice(marks, func(a, b int) bool { return marks[a] < marks[b] })
	return marks
}

// Gaps returns the start timestamps of expected chunk intervals between
// the first and last marked chunk that never arrived, in feed order. A
// late chunk that was eventually marked no longer counts as a gap.
func (m *Monitor) Gaps() []gdelt.Timestamp {
	spacing := m.chunkSpacing()
	if spacing <= 0 || !m.haveChunks {
		return nil
	}
	var out []gdelt.Timestamp
	for iv := m.firstChunk; iv < m.lastChunk; iv += spacing {
		if _, ok := m.chunkSeen[iv]; !ok {
			out = append(out, gdelt.IntervalStart(m.base+int64(iv)))
		}
	}
	return out
}

// ObserveEvent folds a newly published event row into the running totals.
func (m *Monitor) ObserveEvent(ev *gdelt.Event) {
	m.events++
}

// ObserveMention folds one article. Mentions must arrive in non-decreasing
// capture-interval order (the natural order of the 15-minute feed); a
// regression within Config.GraceIntervals is accepted as a late gap
// catch-up (counted, clock unchanged), while a deeper regression is
// reported as an error and the mention is dropped.
func (m *Monitor) ObserveMention(mn *gdelt.Mention) error {
	iv := int32(mn.MentionTime.IntervalIndex() - m.base)
	if iv < m.now {
		if m.now-iv > m.cfg.GraceIntervals {
			err := fmt.Errorf("stream: mention at interval %d after clock reached %d (grace %d)",
				iv, m.now, m.cfg.GraceIntervals)
			m.streamBroken = err
			return err
		}
		m.late++
		mLate.Inc()
	}
	if iv > m.now {
		m.advance(iv)
	}
	m.articles++
	mArticles.Inc()
	m.perSource[mn.SourceName]++
	delay := mn.Delay()
	m.medianDelay.Add(float64(delay))
	if delay > m.cfg.SlowThreshold {
		m.slow++
	}

	// Wildfire tracking: only articles within the window of the event's
	// ignition count.
	evIv := int32(mn.EventTime.IntervalIndex() - m.base)
	if iv-evIv >= m.cfg.Window {
		return nil
	}
	if evIv < m.evictedUpTo {
		// A late mention of an event already evicted from the horizon:
		// its window state is gone, so it cannot contribute to an alert.
		return nil
	}
	st, ok := m.tracked[mn.GlobalEventID]
	if !ok {
		st = &eventState{ignition: evIv, sources: make(map[string]struct{}, 4)}
		m.tracked[mn.GlobalEventID] = st
	}
	st.sources[mn.SourceName] = struct{}{}
	if !st.alerted && len(st.sources) >= m.cfg.MinSources {
		st.alerted = true
		m.alerts = append(m.alerts, Alert{EventID: mn.GlobalEventID, FiredAt: iv, Sources: len(st.sources)})
		mAlerts.Inc()
	}
	mTracked.Set(float64(len(m.tracked)))
	return nil
}

// advance moves the monitor clock forward and evicts events that fell out
// of the wildfire horizon, bounding tracked state to the active window.
func (m *Monitor) advance(iv int32) {
	m.now = iv
	if m.haveChunks {
		mChunkLag.Set(float64(m.now - m.lastChunk))
	}
	cutoff := iv - m.cfg.Window
	if cutoff <= m.evictedUpTo {
		return
	}
	for id, st := range m.tracked {
		if st.ignition < cutoff {
			delete(m.tracked, id)
		}
	}
	m.evictedUpTo = cutoff
}

// Snapshot returns the current aggregate state. Taking a snapshot also
// refreshes the stream_missing_chunks gauge, whose value requires the
// (non-constant-time) gap walk.
func (m *Monitor) Snapshot() Snapshot {
	gaps := len(m.Gaps())
	mMissing.Set(float64(gaps))
	return Snapshot{
		Interval:          m.now,
		Events:            m.events,
		Articles:          m.articles,
		SlowArticles:      m.slow,
		TrackedEvents:     len(m.tracked),
		LateArticles:      m.late,
		MissingChunks:     gaps,
		ApproxMedianDelay: m.medianDelay.Value(),
		Alerts:            append([]Alert(nil), m.alerts...),
	}
}

// TopPublishers returns the k most productive sources observed so far.
func (m *Monitor) TopPublishers(k int) []PublisherCount {
	out := make([]PublisherCount, 0, len(m.perSource))
	for s, n := range m.perSource {
		out = append(out, PublisherCount{Source: s, Articles: n})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Articles != out[b].Articles {
			return out[a].Articles > out[b].Articles
		}
		return out[a].Source < out[b].Source
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// Err returns the first stream-order violation seen, if any.
func (m *Monitor) Err() error { return m.streamBroken }
