// End-to-end live-feed test: a FeedServer speaking the real
// lastupdate/masterfile convention over a generated raw dataset, with
// chaos injecting an outage, a duplicate tick, and a reordered drop; a
// LiveRunner polling it, folding every tick into a Monitor and an append
// log with a compactor sealing along the way. The final world must answer
// queries identically to the same rows batch-built in one shot.
package stream_test

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"

	"gdeltmine/internal/faults"
	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/gen"
	"gdeltmine/internal/registry"
	"gdeltmine/internal/shard"
	"gdeltmine/internal/store"
	"gdeltmine/internal/stream"
)

// liveCfg is a tiny, defect-free world with daily ticks: chaos comes from
// the feed server, not the data.
func liveCfg() gen.Config {
	c := gen.Small()
	c.End = 20150310000000 // ~21 daily ticks
	c.Sources = 40
	c.GKG = false
	c.DefectMalformedMaster = 0
	c.DefectMissingArchives = 0
	c.DefectMissingSourceURL = 0
	c.DefectFutureEventDate = 0
	c.IntervalsPerFile = 96
	return c
}

// emptyWorld builds an empty sharded world spanning the corpus, the
// append log's starting point.
func emptyWorld(t *testing.T, c *gen.Corpus) *shard.DB {
	t.Helper()
	b, err := store.NewBuilder(gdelt.Timestamp(c.World.Cfg.Start),
		int32(c.World.Days()*gdelt.IntervalsPerDay))
	if err != nil {
		t.Fatal(err)
	}
	db, _, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	sdb, err := shard.Split(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	return sdb
}

// batchWorld builds the reference: every corpus row converted in one shot.
func batchWorld(t *testing.T, c *gen.Corpus) *shard.DB {
	t.Helper()
	b, err := store.NewBuilder(gdelt.Timestamp(c.World.Cfg.Start),
		int32(c.World.Days()*gdelt.IntervalsPerDay))
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Events {
		ev := c.EventRecord(i)
		b.AddEvent(&ev)
	}
	for j := range c.Mentions {
		mn := c.MentionRecord(j)
		b.AddMention(&mn)
	}
	db, _, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	sdb, err := shard.Split(db, 1)
	if err != nil {
		t.Fatal(err)
	}
	return sdb
}

func runLiveKind(t *testing.T, s *shard.DB, kind string) any {
	t.Helper()
	d := registry.MustLookup(kind)
	p, err := d.ParseParams(func(string) []string { return nil })
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.RunSharded(s.View().WithWorkers(2).WithKind(kind), p)
	if err != nil {
		t.Fatalf("%s: %v", kind, err)
	}
	return got
}

func TestLiveFeedEndToEnd(t *testing.T) {
	cfg := liveCfg()
	c, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := gen.WriteRaw(c, dir); err != nil {
		t.Fatal(err)
	}

	// Chaos on fixed ticks: an outage, a stale duplicate, a reordered drop.
	fs, err := stream.NewFeedServer(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Ticks() < 12 {
		t.Fatalf("dataset has only %d ticks", fs.Ticks())
	}
	chaos := &faults.FeedChaos{Plan: map[string]faults.FeedFault{
		fs.TickTS(2).String(): faults.FeedOutage,
		fs.TickTS(4).String(): faults.FeedDuplicate,
		fs.TickTS(6).String(): faults.FeedDrop,
	}}
	fs, err = stream.NewFeedServer(dir, chaos)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(fs)
	defer srv.Close()

	start := gdelt.Timestamp(cfg.Start)
	mon := stream.NewMonitor(start, stream.Config{ChunkIntervals: 96, GraceIntervals: 96})
	lg := shard.NewLog(emptyWorld(t, c))
	comp := stream.NewCompactor(lg, stream.CompactorConfig{MaxTailRows: 1 << 30, MaxTailSpan: 5 * 96})
	runner := stream.NewLiveRunner(&stream.FeedClient{Base: srv.URL}, mon, lg,
		start, stream.LiveConfig{TickIntervals: 96, SkipAfterPolls: 2})

	ctx := context.Background()
	for fs.Advance() {
		if err := runner.PollOnce(ctx); err != nil {
			t.Fatalf("poll at tick %d: %v", fs.Pos(), err)
		}
		if _, err := comp.RunOnce(); err != nil {
			t.Fatalf("compactor at tick %d: %v", fs.Pos(), err)
		}
	}
	// The drop tick surfaces in the master list a couple of ticks late;
	// drain with extra polls at the feed head.
	for i := 0; i < 4 && runner.Pending() > 0; i++ {
		if err := runner.PollOnce(ctx); err != nil {
			t.Fatal(err)
		}
	}

	st := runner.Stats()
	if st.Outages == 0 {
		t.Error("outage tick never observed")
	}
	if st.Duplicates == 0 {
		t.Error("duplicate advertisement never observed")
	}
	if st.CatchUps == 0 {
		t.Error("reordered drop never recovered through the master list")
	}
	if len(st.Skipped) != 0 {
		t.Errorf("ticks skipped: %v (all ticks are recoverable in this scenario)", st.Skipped)
	}
	if st.Ticks != fs.Ticks() {
		t.Fatalf("folded %d ticks, feed served %d", st.Ticks, fs.Ticks())
	}
	if gaps := mon.Gaps(); len(gaps) != 0 {
		t.Errorf("monitor ledger has gaps: %v", gaps)
	}
	if err := mon.Err(); err != nil {
		t.Errorf("monitor broke: %v", err)
	}

	// The compactor sealed along the way, and the final world answers like
	// the batch build.
	live := lg.Snapshot()
	if live.K() < 2 {
		t.Errorf("compactor never sealed: K=%d", live.K())
	}
	ref := batchWorld(t, c)
	if got, want := totalMentions(live), totalMentions(ref); got != want {
		t.Fatalf("live world has %d mention rows, batch has %d", got, want)
	}
	for _, kind := range []string{"top-publishers", "top-events", "country", "series-articles", "delays"} {
		if !reflect.DeepEqual(runLiveKind(t, live, kind), runLiveKind(t, ref, kind)) {
			t.Errorf("%s: live-fed world diverges from batch build", kind)
		}
	}
}

// TestLiveResumeFromCheckpoint restarts the poller mid-feed from a monitor
// checkpoint whose ledger holds an interior gap (a dropped tick the first
// run gave up on). ResumePoint lands ON the gap, so the resumed runner
// walks back through already-consumed territory: it must drop every
// checkpointed tick as a duplicate without re-fetching it, recognize the
// stale gap as unrecoverable (folding it would regress the monitor clock
// beyond grace — and before the fix, the log append ran first and left an
// orphaned below-the-window chunk that wedged every later fold), and then
// fold exactly the ticks the first run never saw.
func TestLiveResumeFromCheckpoint(t *testing.T) {
	cfg := liveCfg()
	c, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := gen.WriteRaw(c, dir); err != nil {
		t.Fatal(err)
	}

	// Tick 1 is a reordered drop. With SkipAfterPolls=1 and one poll per
	// advance, the first run skips it before its files land (they surface
	// at tick 3, by which point the runner moved on) — a durable ledger gap.
	probe, err := stream.NewFeedServer(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	chaos := &faults.FeedChaos{Plan: map[string]faults.FeedFault{
		probe.TickTS(1).String(): faults.FeedDrop,
	}}
	fs, err := stream.NewFeedServer(dir, chaos)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Ticks() < 12 {
		t.Fatalf("dataset has only %d ticks", fs.Ticks())
	}
	srv := httptest.NewServer(fs)
	defer srv.Close()

	start := gdelt.Timestamp(cfg.Start)
	mcfg := stream.Config{ChunkIntervals: 96, GraceIntervals: 96}
	lcfg := stream.LiveConfig{TickIntervals: 96, SkipAfterPolls: 1}
	ctx := context.Background()

	// First run: consume the first 8 ticks, skipping the dropped one.
	mon := stream.NewMonitor(start, mcfg)
	lg := shard.NewLog(emptyWorld(t, c))
	runner := stream.NewLiveRunner(&stream.FeedClient{Base: srv.URL}, mon, lg, start, lcfg)
	for i := 0; i < 8 && fs.Advance(); i++ {
		if err := runner.PollOnce(ctx); err != nil {
			t.Fatalf("first run, poll %d: %v", i, err)
		}
	}
	st := runner.Stats()
	if len(st.Skipped) != 1 || st.Skipped[0] != fs.TickTS(1) {
		t.Fatalf("first run skipped %v, want exactly the dropped tick %s", st.Skipped, fs.TickTS(1))
	}
	if st.Ticks != 7 {
		t.Fatalf("first run folded %d ticks, want 7", st.Ticks)
	}

	// Restart: monitor state survives through the checkpoint, the log is
	// rebuilt empty (appends are in-memory; the feed is the WAL). The
	// resume point is the gap — the first unseen tick.
	mon2, err := stream.FromCheckpoint(mon.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}
	resume := stream.ResumePoint(mon2, start, lcfg.TickIntervals)
	if resume != fs.TickTS(1) {
		t.Fatalf("resume point %s, want the gap %s", resume, fs.TickTS(1))
	}
	lg2 := shard.NewLog(emptyWorld(t, c))
	runner2 := stream.NewLiveRunner(&stream.FeedClient{Base: srv.URL}, mon2, lg2, resume, lcfg)
	for fs.Advance() {
		if err := runner2.PollOnce(ctx); err != nil {
			t.Fatalf("resumed run: %v", err)
		}
	}
	for i := 0; i < 4 && runner2.Pending() > 0; i++ {
		if err := runner2.PollOnce(ctx); err != nil {
			t.Fatal(err)
		}
	}

	st2 := runner2.Stats()
	if want := fs.Ticks() - 8; st2.Ticks != want {
		t.Errorf("resumed run folded %d ticks, want the %d unseen ones", st2.Ticks, want)
	}
	// The gap's files are served by now (the drop landed), but the tick is
	// older than the grace window: it must be re-skipped, not folded.
	if len(st2.Skipped) != 1 || st2.Skipped[0] != fs.TickTS(1) {
		t.Errorf("resumed run skipped %v, want exactly the stale gap %s", st2.Skipped, fs.TickTS(1))
	}
	if st2.Duplicates < 7 {
		t.Errorf("resumed run counted %d duplicates, want >= the 7 checkpointed ticks", st2.Duplicates)
	}
	if err := mon2.Err(); err != nil {
		t.Errorf("resumed monitor broke: %v", err)
	}
	if gaps := mon2.Gaps(); len(gaps) != 1 {
		t.Errorf("ledger has %d gaps, want the dropped tick only: %v", len(gaps), gaps)
	}

	// The rebuilt log holds exactly the resumed run's ticks — nothing
	// double-appended from checkpointed territory. Mentions referencing
	// events whose export row was published in a pre-frontier chunk are
	// dangling in the from-empty rebuild and dropped (counted, like
	// Builder.Finish drops them), so the expectation excludes them.
	want := 0
	frontier := int32(8 * 96)
	for j := range c.Mentions {
		m := &c.Mentions[j]
		if m.Interval >= frontier && c.Events[m.Event].FirstMention >= frontier {
			want++
		}
	}
	if got := totalMentions(lg2.Snapshot()); got != want {
		t.Errorf("resumed log holds %d mention rows, want the %d past the checkpoint frontier", got, want)
	}
}

func totalMentions(s *shard.DB) int {
	n := 0
	for i := 0; i < s.K(); i++ {
		n += s.Part(i).Mentions.Len()
	}
	return n
}
