package stream

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/stats"
)

// checkpointVersion guards the snapshot layout.
const checkpointVersion = 1

// TrackedEvent is the serialized wildfire-horizon state of one event.
type TrackedEvent struct {
	EventID  int64    `json:"eventId"`
	Ignition int32    `json:"ignition"`
	Sources  []string `json:"sources"`
	Alerted  bool     `json:"alerted"`
}

// Checkpoint is a complete, JSON-serializable snapshot of a Monitor. A
// monitor restored from it and fed the not-yet-seen intervals produces
// exactly the state an uninterrupted monitor would have reached — the
// restart path of a long-running feed deployment.
type Checkpoint struct {
	Version   int              `json:"version"`
	Start     gdelt.Timestamp  `json:"start"`
	Config    Config           `json:"config"`
	Now       int32            `json:"now"`
	Events    int64            `json:"events"`
	Articles  int64            `json:"articles"`
	Slow      int64            `json:"slow"`
	Late      int64            `json:"late"`
	Evicted   int32            `json:"evictedUpTo"`
	Median    stats.P2State    `json:"median"`
	PerSource map[string]int64 `json:"perSource"`
	Tracked   []TrackedEvent   `json:"tracked"`
	Alerts    []Alert          `json:"alerts"`
	// Chunks lists the marked chunk intervals (offsets from Start).
	Chunks []int32 `json:"chunks"`
}

// Checkpoint captures the monitor's full state.
func (m *Monitor) Checkpoint() *Checkpoint {
	cp := &Checkpoint{
		Version:   checkpointVersion,
		Start:     gdelt.IntervalStart(m.base),
		Config:    m.cfg,
		Now:       m.now,
		Events:    m.events,
		Articles:  m.articles,
		Slow:      m.slow,
		Late:      m.late,
		Evicted:   m.evictedUpTo,
		Median:    m.medianDelay.State(),
		PerSource: make(map[string]int64, len(m.perSource)),
		Alerts:    append([]Alert(nil), m.alerts...),
		Chunks:    m.sortedMarks(),
	}
	for s, n := range m.perSource {
		cp.PerSource[s] = n
	}
	for id, st := range m.tracked {
		te := TrackedEvent{EventID: id, Ignition: st.ignition, Alerted: st.alerted}
		for s := range st.sources {
			te.Sources = append(te.Sources, s)
		}
		cp.Tracked = append(cp.Tracked, te)
	}
	return cp
}

// FromCheckpoint rebuilds a monitor from a snapshot.
func FromCheckpoint(cp *Checkpoint) (*Monitor, error) {
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("stream: checkpoint version %d, want %d", cp.Version, checkpointVersion)
	}
	m := NewMonitor(cp.Start, cp.Config)
	m.now = cp.Now
	m.events = cp.Events
	m.articles = cp.Articles
	m.slow = cp.Slow
	m.late = cp.Late
	m.evictedUpTo = cp.Evicted
	m.medianDelay = stats.P2FromState(cp.Median)
	for s, n := range cp.PerSource {
		m.perSource[s] = n
	}
	for _, te := range cp.Tracked {
		st := &eventState{ignition: te.Ignition, alerted: te.Alerted, sources: make(map[string]struct{}, len(te.Sources))}
		for _, s := range te.Sources {
			st.sources[s] = struct{}{}
		}
		m.tracked[te.EventID] = st
	}
	m.alerts = append([]Alert(nil), cp.Alerts...)
	for _, iv := range cp.Chunks {
		m.MarkChunk(gdelt.IntervalStart(m.base + int64(iv)))
	}
	return m, nil
}

// WriteFile atomically and durably persists the checkpoint as JSON: the
// payload is written to a temp file, fsynced, renamed into place, and the
// parent directory is fsynced last. Without that final directory sync a
// power cut after the rename could resurrect the previous checkpoint — the
// rename lives in the directory, and an unsynced directory entry is
// allowed to roll back — which would silently replay chunks the monitor
// had already counted.
func (cp *Checkpoint) WriteFile(path string) error {
	data, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("stream: encoding checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("stream: writing checkpoint: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("stream: writing checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("stream: syncing checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("stream: closing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if err := fsyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("stream: syncing checkpoint dir: %w", err)
	}
	return nil
}

// fsyncDir makes a rename within dir durable. Swappable so the regression
// test can observe that (and when) the directory sync happens.
var fsyncDir = func(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReadCheckpointFile loads a checkpoint written by WriteFile.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cp := &Checkpoint{}
	if err := json.Unmarshal(data, cp); err != nil {
		return nil, fmt.Errorf("stream: decoding checkpoint %s: %w", path, err)
	}
	return cp, nil
}
