package stream

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"

	"gdeltmine/internal/faults"
	"gdeltmine/internal/gdelt"
)

// FeedServer simulates the live GDELT feed over a raw dataset directory
// (as written by internal/gen.WriteRaw): it serves the real protocol — a
// /lastupdate.txt rewritten per 15-minute tick with the newest tick's
// "size crc32 path" lines, a cumulative /masterfilelist.txt, and the chunk
// files themselves — and advances tick by tick under test control.
// An optional faults.FeedChaos injects outages (lastupdate returns 503 for
// the tick), duplicate ticks (lastupdate republishes the previous tick;
// the new one is only discoverable via the master list), and reordered
// drops (the tick's files land faults.DropDelay ticks late, surfacing in
// the master list after newer ticks were already advertised).
type FeedServer struct {
	dir   string
	chaos *faults.FeedChaos
	ticks []feedTick
	byPth map[string]int // chunk path -> tick index
	cur   atomic.Int64   // index of the newest published tick; -1 = nothing yet
}

type feedTick struct {
	ts      gdelt.Timestamp
	entries []gdelt.MasterEntry
}

// NewFeedServer reads the dataset's master list and groups its entries
// into ticks by capture-interval timestamp.
func NewFeedServer(dir string, chaos *faults.FeedChaos) (*FeedServer, error) {
	f, err := os.Open(filepath.Join(dir, "masterfilelist.txt"))
	if err != nil {
		return nil, fmt.Errorf("stream: feed dataset: %w", err)
	}
	ml, err := gdelt.ReadMasterList(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	byTS := map[gdelt.Timestamp][]gdelt.MasterEntry{}
	for _, e := range ml.Entries {
		ts, err := e.Interval()
		if err != nil {
			return nil, fmt.Errorf("stream: feed dataset entry %q: %w", e.Path, err)
		}
		byTS[ts] = append(byTS[ts], e)
	}
	s := &FeedServer{dir: dir, chaos: chaos, byPth: map[string]int{}}
	for ts := range byTS {
		s.ticks = append(s.ticks, feedTick{ts: ts, entries: byTS[ts]})
	}
	sort.Slice(s.ticks, func(a, b int) bool { return s.ticks[a].ts < s.ticks[b].ts })
	for i, tk := range s.ticks {
		for _, e := range tk.entries {
			s.byPth[e.Path] = i
		}
	}
	s.cur.Store(-1)
	return s, nil
}

// Ticks returns how many feed ticks the dataset holds.
func (s *FeedServer) Ticks() int { return len(s.ticks) }

// Pos returns the index of the newest published tick (-1 before the first
// Advance).
func (s *FeedServer) Pos() int { return int(s.cur.Load()) }

// TickTS returns the timestamp of tick i.
func (s *FeedServer) TickTS(i int) gdelt.Timestamp { return s.ticks[i].ts }

// Advance publishes the next tick, reporting false once the feed is
// exhausted.
func (s *FeedServer) Advance() bool {
	for {
		cur := s.cur.Load()
		if cur >= int64(len(s.ticks))-1 {
			return false
		}
		if s.cur.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func (s *FeedServer) fault(i int64) faults.FeedFault {
	return s.chaos.FaultFor(s.ticks[i].ts.String())
}

// published reports whether tick i's files are fetchable: normally as soon
// as the tick is current, but a dropped tick's files land DropDelay ticks
// late.
func (s *FeedServer) published(i, cur int64) bool {
	if i > cur {
		return false
	}
	if s.fault(i) == faults.FeedDrop && cur < i+faults.DropDelay {
		return false
	}
	return true
}

func (s *FeedServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch filepath.Base(r.URL.Path) {
	case "lastupdate.txt":
		s.serveLastUpdate(w)
	case "masterfilelist.txt":
		s.serveMasterList(w)
	default:
		s.serveChunk(w, r)
	}
}

func (s *FeedServer) serveLastUpdate(w http.ResponseWriter) {
	cur := s.cur.Load()
	if cur < 0 {
		http.Error(w, "no update yet", http.StatusNotFound)
		return
	}
	// An outage takes the endpoint down for the tick's whole stint at the
	// head of the feed.
	if s.fault(cur) == faults.FeedOutage {
		http.Error(w, "feed unavailable", http.StatusServiceUnavailable)
		return
	}
	for i := cur; i >= 0; i-- {
		switch {
		case i == cur && s.fault(i) == faults.FeedDuplicate:
			// Stale republish: the previous tick's lastupdate again.
			continue
		case !s.published(i, cur):
			continue
		}
		w.Header().Set("Content-Type", "text/plain")
		gdelt.WriteMasterList(w, &gdelt.MasterList{Entries: s.ticks[i].entries})
		return
	}
	http.Error(w, "no update yet", http.StatusNotFound)
}

func (s *FeedServer) serveMasterList(w http.ResponseWriter) {
	cur := s.cur.Load()
	ml := &gdelt.MasterList{}
	for i := int64(0); i <= cur && i < int64(len(s.ticks)); i++ {
		if s.published(i, cur) {
			ml.Entries = append(ml.Entries, s.ticks[i].entries...)
		}
	}
	w.Header().Set("Content-Type", "text/plain")
	gdelt.WriteMasterList(w, ml)
}

func (s *FeedServer) serveChunk(w http.ResponseWriter, r *http.Request) {
	name := filepath.Base(r.URL.Path)
	i, ok := s.byPth[name]
	if !ok || !s.published(int64(i), s.cur.Load()) {
		http.Error(w, "not found", http.StatusNotFound)
		return
	}
	http.ServeFile(w, r, filepath.Join(s.dir, name))
}
