package stream

import (
	"sync"
	"time"

	"gdeltmine/internal/obs"
	"gdeltmine/internal/shard"
)

var (
	mCompactorSeals = obs.Default.Counter("stream_compactor_seals_total",
		"tail shards sealed into immutable indexed parts")
	mCompactorErrors = obs.Default.Counter("stream_compactor_errors_total",
		"compactor seal attempts that failed")
	mCompactorRewrite = obs.Default.Histogram("stream_compactor_rewrite_seconds",
		"wall time of one seal: slice, index rebuild, crash-safe persist", obs.LatencyBuckets)
	mTailRows = obs.Default.Gauge("stream_tail_rows",
		"mention rows currently held by the mutable tail shard")
	mCompactionLag = obs.Default.Gauge("stream_compaction_lag_intervals",
		"capture intervals of data accumulated in the tail since the last seal")
)

// CompactorConfig sets the seal thresholds of the background compactor.
type CompactorConfig struct {
	// MaxTailRows seals the tail once it holds at least this many mention
	// rows (size threshold). 0 means 50000.
	MaxTailRows int
	// MaxTailSpan seals the tail once its data spans at least this many
	// capture intervals (age threshold — one day is 96). 0 means 96.
	MaxTailSpan int32
	// Poll is the background check period. 0 means one second; ticks land
	// every 15 minutes, so anything well under that keeps compaction lag
	// bounded by the thresholds rather than the poll.
	Poll time.Duration
}

func (c CompactorConfig) withDefaults() CompactorConfig {
	if c.MaxTailRows == 0 {
		c.MaxTailRows = 50000
	}
	if c.MaxTailSpan == 0 {
		c.MaxTailSpan = 96
	}
	if c.Poll == 0 {
		c.Poll = time.Second
	}
	return c
}

// Compactor seals a Log's mutable tail into immutable sorted parts once it
// crosses a size or age threshold. It is the background half of the
// append-log design: appends stay cheap because the tail is small, queries
// stay fast because sealed parts carry full derived indexes, and the seal
// itself is crash-safe (shard.Log's persist protocol). Run it either
// deterministically via RunOnce (tests, the live poller's tick loop) or as
// a goroutine via Start/Stop.
type Compactor struct {
	lg  *shard.Log
	cfg CompactorConfig

	mu   sync.Mutex
	err  error // first seal failure, sticky
	stop chan struct{}
	done chan struct{}
}

// NewCompactor returns a compactor over lg. Nothing runs until RunOnce or
// Start is called.
func NewCompactor(lg *shard.Log, cfg CompactorConfig) *Compactor {
	return &Compactor{lg: lg, cfg: cfg.withDefaults()}
}

// RunOnce checks the thresholds and seals at most once, reporting whether
// a seal happened. The tail gauges are refreshed on every call, sealed or
// not, so dashboards see compaction lag grow between seals.
func (c *Compactor) RunOnce() (bool, error) {
	rows, span := c.lg.TailRows(), c.lg.TailSpan()
	mTailRows.Set(float64(rows))
	mCompactionLag.Set(float64(span))
	if rows == 0 || (rows < c.cfg.MaxTailRows && span < c.cfg.MaxTailSpan) {
		return false, nil
	}
	start := time.Now()
	sealed, err := c.lg.Seal()
	if err != nil {
		mCompactorErrors.Inc()
		c.mu.Lock()
		if c.err == nil {
			c.err = err
		}
		c.mu.Unlock()
		return false, err
	}
	if sealed {
		mCompactorSeals.Inc()
		mCompactorRewrite.ObserveSince(start)
		mTailRows.Set(float64(c.lg.TailRows()))
		mCompactionLag.Set(float64(c.lg.TailSpan()))
	}
	return sealed, nil
}

// Err returns the first seal failure observed by the background loop (or
// RunOnce), if any.
func (c *Compactor) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// Start launches the background seal loop. A seal failure is recorded in
// Err and the loop keeps polling — the log stays servable on the old world
// and a later attempt may succeed (transient disk pressure).
func (c *Compactor) Start() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stop != nil {
		return
	}
	c.stop = make(chan struct{})
	c.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		t := time.NewTicker(c.cfg.Poll)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.RunOnce()
			}
		}
	}(c.stop, c.done)
}

// Stop halts the background loop and waits for an in-flight seal to
// finish. Safe to call without Start.
func (c *Compactor) Stop() {
	c.mu.Lock()
	stop, done := c.stop, c.done
	c.stop, c.done = nil, nil
	c.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
