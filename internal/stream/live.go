package stream

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"

	"gdeltmine/internal/gdelt"
	"gdeltmine/internal/obs"
	"gdeltmine/internal/shard"
)

var (
	mLiveTicks = obs.Default.Counter("stream_live_ticks_total",
		"feed ticks fetched, parsed and folded by the live poller")
	mLiveDup = obs.Default.Counter("stream_live_duplicates_total",
		"lastupdate polls that re-advertised an already-known tick")
	mLiveOutages = obs.Default.Counter("stream_live_outages_total",
		"polls that found the feed endpoint down")
	mLiveCatchup = obs.Default.Counter("stream_live_catchup_total",
		"ticks recovered through the master list after missing from lastupdate")
	mLiveSkipped = obs.Default.Counter("stream_live_skipped_total",
		"ticks given up on after exhausting the catch-up budget")
)

// ErrFeedDown reports that the feed's lastupdate endpoint answered with a
// server error — the outage case, retryable by the next poll.
var ErrFeedDown = errors.New("stream: feed unavailable")

// FeedClient speaks the GDELT lastupdate/masterfile convention against a
// feed base URL.
type FeedClient struct {
	// Base is the feed root, e.g. "http://data.gdeltproject.org/gdeltv2"
	// or a test server URL. No trailing slash.
	Base string
	// HTTP is the client to use; nil means http.DefaultClient.
	HTTP *http.Client
}

func (c *FeedClient) get(ctx context.Context, name string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/"+name, nil)
	if err != nil {
		return nil, err
	}
	h := c.HTTP
	if h == nil {
		h = http.DefaultClient
	}
	resp, err := h.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		return nil, fmt.Errorf("%w: %s: %s", ErrFeedDown, name, resp.Status)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("stream: feed %s: %s", name, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// LastUpdate fetches and strictly parses the newest tick's file list.
func (c *FeedClient) LastUpdate(ctx context.Context) ([]gdelt.MasterEntry, error) {
	data, err := c.get(ctx, "lastupdate.txt")
	if err != nil {
		return nil, err
	}
	return gdelt.ReadLastUpdate(bytes.NewReader(data))
}

// MasterList fetches the cumulative master file list (tolerant parse — the
// real one carries the malformed lines the paper catalogued).
func (c *FeedClient) MasterList(ctx context.Context) (*gdelt.MasterList, error) {
	data, err := c.get(ctx, "masterfilelist.txt")
	if err != nil {
		return nil, err
	}
	return gdelt.ReadMasterList(bytes.NewReader(data))
}

// Fetch downloads one chunk file and verifies its advertised size and
// CRC-32 before handing it over.
func (c *FeedClient) Fetch(ctx context.Context, e gdelt.MasterEntry) ([]byte, error) {
	data, err := c.get(ctx, e.Path)
	if err != nil {
		return nil, err
	}
	if int64(len(data)) != e.Size {
		return nil, fmt.Errorf("stream: chunk %s: %d bytes, master list says %d", e.Path, len(data), e.Size)
	}
	if got := gdelt.Checksum32(data); got != e.Checksum {
		return nil, fmt.Errorf("stream: chunk %s: checksum %s, master list says %s", e.Path, got, e.Checksum)
	}
	return data, nil
}

// LiveConfig tunes the live poller.
type LiveConfig struct {
	// TickIntervals is the feed's tick spacing in capture intervals
	// (how many 15-minute intervals one file pair covers). 0 means 1.
	TickIntervals int32
	// SkipAfterPolls is how many consecutive polls a tick may stay
	// missing — while newer ticks are already buffered — before the
	// poller declares it lost and moves on (the gap then shows in the
	// monitor's ledger). Catch-up via the master list is attempted on
	// every such poll first. 0 means 3.
	SkipAfterPolls int
}

func (c LiveConfig) withDefaults() LiveConfig {
	if c.TickIntervals == 0 {
		c.TickIntervals = 1
	}
	if c.SkipAfterPolls == 0 {
		c.SkipAfterPolls = 3
	}
	return c
}

// LiveStats counts what the poller has seen.
type LiveStats struct {
	Polls      int // PollOnce calls
	Ticks      int // ticks fetched, parsed and folded
	Events     int // event records folded
	Mentions   int // mention records folded
	Duplicates int // lastupdate polls re-advertising a known tick
	Outages    int // polls that found the feed down
	CatchUps   int // ticks recovered via the master list
	Skipped    []gdelt.Timestamp
}

// LiveRunner polls a live feed and folds each tick, strictly in feed
// order, into a Monitor (incremental stats, alerts, chunk ledger) and an
// optional shard.Log (the queryable append log). Out-of-order arrivals —
// the reordered-drop fault — are buffered until the missing tick is
// recovered through the master list or given up on; duplicate
// advertisements are dropped by tick timestamp. The runner is
// single-goroutine: call PollOnce from one loop.
type LiveRunner struct {
	cl  *FeedClient
	mon *Monitor
	lg  *shard.Log
	cfg LiveConfig

	base    int64 // interval index of the archive start
	next    int64 // interval index of the next tick to apply
	end     int64 // one past the last valid interval index
	stall   int
	failIv  int64 // tick whose fetch keeps failing
	fails   int   // consecutive fetch failures of failIv
	pending map[int64][]gdelt.MasterEntry
	stats   LiveStats
}

// NewLiveRunner starts polling at the tick whose timestamp is start. mon
// is required (it owns the chunk ledger and gap accounting); lg may be nil
// for a stats-only deployment. When resuming from a checkpoint, pass
// ResumePoint's result as start so already-folded ticks are not re-applied.
func NewLiveRunner(cl *FeedClient, mon *Monitor, lg *shard.Log, start gdelt.Timestamp, cfg LiveConfig) *LiveRunner {
	r := &LiveRunner{
		cl: cl, mon: mon, lg: lg, cfg: cfg.withDefaults(),
		pending: map[int64][]gdelt.MasterEntry{},
	}
	r.base = start.IntervalIndex()
	r.next = r.base
	r.end = 0
	if lg != nil {
		meta := lg.Snapshot().Meta()
		r.end = meta.Start.IntervalIndex() + int64(meta.Intervals)
	}
	return r
}

// ResumePoint returns the first tick at or after start that the monitor's
// chunk ledger has not marked — where a restarted poller should resume so
// checkpointed ticks are not double-counted. spacing is the feed's tick
// spacing in capture intervals.
func ResumePoint(m *Monitor, start gdelt.Timestamp, spacing int32) gdelt.Timestamp {
	iv := start.IntervalIndex()
	for m.SeenChunk(gdelt.IntervalStart(iv)) {
		iv += int64(spacing)
	}
	return gdelt.IntervalStart(iv)
}

// Stats returns a snapshot of the poll counters.
func (r *LiveRunner) Stats() LiveStats {
	s := r.stats
	s.Skipped = append([]gdelt.Timestamp(nil), r.stats.Skipped...)
	return s
}

// Pending returns how many fetched-but-not-yet-applicable ticks are
// buffered (newer ticks waiting on a missing older one).
func (r *LiveRunner) Pending() int { return len(r.pending) }

// PollOnce performs one poll cycle: read lastupdate, buffer the advertised
// tick, recover older missing ticks through the master list when newer
// ones are already waiting, and apply every applicable tick in strict feed
// order. A feed outage is not an error — it is counted and the cycle
// continues with whatever is already buffered.
func (r *LiveRunner) PollOnce(ctx context.Context) error {
	r.stats.Polls++
	entries, err := r.cl.LastUpdate(ctx)
	switch {
	case errors.Is(err, ErrFeedDown):
		r.stats.Outages++
		mLiveOutages.Inc()
	case err != nil:
		return err
	default:
		r.buffer(entries)
	}

	// A tick is "missing" only when a newer one is already buffered — the
	// feed has demonstrably moved past it. While that holds, try the
	// master list (reordered drops surface there late), and after
	// SkipAfterPolls such polls declare the tick lost.
	if r.aheadOfNext() {
		r.stall++
		ml, err := r.cl.MasterList(ctx)
		if err == nil {
			before := len(r.pending)
			r.buffer(ml.Entries)
			if _, ok := r.pending[r.next]; ok {
				r.stats.CatchUps += len(r.pending) - before
				mLiveCatchup.Add(int64(len(r.pending) - before))
			}
		}
		if _, ok := r.pending[r.next]; !ok && r.stall >= r.cfg.SkipAfterPolls {
			ts := gdelt.IntervalStart(r.next)
			r.stats.Skipped = append(r.stats.Skipped, ts)
			mLiveSkipped.Inc()
			r.next += int64(r.cfg.TickIntervals)
			r.stall = 0
		}
	} else {
		r.stall = 0
	}

	// Apply everything applicable, in order. Fetch and parse failures are
	// retryable — the tick stays pending and the next poll tries again —
	// but a tick that keeps failing for SkipAfterPolls polls (an advertised
	// chunk the feed never actually serves) is given up on like a
	// never-advertised one: dropped, recorded, its interval left as a gap
	// in the monitor's ledger. Fold errors are returned undamped: the fold
	// runs only after a fully successful fetch, and a failed Append leaves
	// the log unmutated, so they signal a logic error, not feed weather.
	for {
		entries, ok := r.pending[r.next]
		if !ok {
			break
		}
		// A restarted poller resumes at the first UNSEEN tick (ResumePoint
		// returns the earliest ledger gap), so every already-checkpointed
		// tick between that gap and the previous run's frontier comes past
		// here again — consumed ticks must be dropped like any duplicate,
		// never re-fetched: re-folding them would double-count the monitor
		// and append below the log's sealed window.
		if r.mon.SeenChunk(gdelt.IntervalStart(r.next)) {
			r.stats.Duplicates++
			mLiveDup.Inc()
			delete(r.pending, r.next)
			r.next += int64(r.cfg.TickIntervals)
			r.stall = 0
			continue
		}
		// An unseen tick the monitor can no longer accept (a ledger gap
		// deeper than the grace window, surfacing only after a restart)
		// is unrecoverable: folding it would regress the stream clock
		// beyond grace. Skip it BEFORE fetching — and before the log
		// append, which must never run for a tick the monitor will then
		// reject. The gap stays on the ledger.
		if !r.mon.Foldable(gdelt.IntervalStart(r.next)) {
			r.stats.Skipped = append(r.stats.Skipped, gdelt.IntervalStart(r.next))
			mLiveSkipped.Inc()
			delete(r.pending, r.next)
			r.next += int64(r.cfg.TickIntervals)
			r.stall = 0
			continue
		}
		evs, mns, err := r.fetchTick(ctx, entries)
		if err != nil {
			if r.failIv != r.next {
				r.failIv, r.fails = r.next, 0
			}
			if r.fails++; r.fails >= r.cfg.SkipAfterPolls {
				delete(r.pending, r.next)
				r.stats.Skipped = append(r.stats.Skipped, gdelt.IntervalStart(r.next))
				mLiveSkipped.Inc()
				r.next += int64(r.cfg.TickIntervals)
				r.fails = 0
			}
			return err
		}
		r.fails = 0
		if err := r.foldTick(r.next, evs, mns); err != nil {
			return err
		}
		delete(r.pending, r.next)
		r.next += int64(r.cfg.TickIntervals)
		r.stall = 0
	}
	return nil
}

// buffer files advertised entries under their tick, dropping ticks already
// applied or already buffered (duplicates).
func (r *LiveRunner) buffer(entries []gdelt.MasterEntry) {
	byTick := map[int64][]gdelt.MasterEntry{}
	for _, e := range entries {
		ts, err := e.Interval()
		if err != nil {
			continue
		}
		byTick[ts.IntervalIndex()] = append(byTick[ts.IntervalIndex()], e)
	}
	for iv, group := range byTick {
		switch {
		case iv < r.next:
			r.stats.Duplicates++
			mLiveDup.Inc()
		case r.pending[iv] != nil:
			// Re-advertised while buffered: only lastupdate repeats count
			// as duplicates; master-list sightings are the normal case.
			if len(byTick) == 1 {
				r.stats.Duplicates++
				mLiveDup.Inc()
			}
		default:
			r.pending[iv] = group
		}
	}
}

// aheadOfNext reports whether a tick newer than next is already buffered.
func (r *LiveRunner) aheadOfNext() bool {
	for iv := range r.pending {
		if iv > r.next {
			return true
		}
	}
	return false
}

// fetchTick fetches and parses one tick's files without side effects, so a
// failure here can be retried or the tick skipped. GKG files are ignored —
// the append path extends the event/mention tables only.
func (r *LiveRunner) fetchTick(ctx context.Context, entries []gdelt.MasterEntry) ([]gdelt.Event, []gdelt.Mention, error) {
	// Deterministic order: export before mentions.
	sort.Slice(entries, func(a, b int) bool { return entries[a].Kind() < entries[b].Kind() })
	var evs []gdelt.Event
	var mns []gdelt.Mention
	var fields [][]byte
	for _, e := range entries {
		kind := e.Kind()
		if kind != "export" && kind != "mentions" {
			continue
		}
		data, err := r.cl.Fetch(ctx, e)
		if err != nil {
			return nil, nil, err
		}
		for _, line := range bytes.Split(data, []byte{'\n'}) {
			if len(line) == 0 {
				continue
			}
			fields = gdelt.SplitTabs(line, fields[:0])
			if kind == "export" {
				ev, err := gdelt.ParseEventFields(fields)
				if err != nil {
					return nil, nil, fmt.Errorf("stream: %s: %w", e.Path, err)
				}
				evs = append(evs, ev)
			} else {
				mn, err := gdelt.ParseMentionFields(fields)
				if err != nil {
					return nil, nil, fmt.Errorf("stream: %s: %w", e.Path, err)
				}
				mns = append(mns, mn)
			}
		}
	}
	return evs, mns, nil
}

// foldTick folds one fully fetched tick: events and mentions into the
// append log first (a failed fold must not mark the tick consumed), then
// the monitor's ledger and incremental stats.
func (r *LiveRunner) foldTick(iv int64, evs []gdelt.Event, mns []gdelt.Mention) error {
	if r.end > 0 && iv >= r.end {
		return fmt.Errorf("stream: tick %s beyond the append log's archive span", gdelt.IntervalStart(iv))
	}
	if r.lg != nil {
		if _, err := r.lg.Append(evs, mns); err != nil {
			return fmt.Errorf("stream: folding tick %s: %w", gdelt.IntervalStart(iv), err)
		}
	}
	ts := gdelt.IntervalStart(iv)
	r.mon.MarkChunk(ts)
	for i := range evs {
		r.mon.ObserveEvent(&evs[i])
	}
	for i := range mns {
		if err := r.mon.ObserveMention(&mns[i]); err != nil {
			return err
		}
	}
	r.stats.Ticks++
	r.stats.Events += len(evs)
	r.stats.Mentions += len(mns)
	mLiveTicks.Inc()
	return nil
}
