package stream

import (
	"os"
	"path/filepath"
	"testing"

	"gdeltmine/internal/gdelt"
)

// tornMonitor builds a monitor with enough state that a truncated
// checkpoint cannot accidentally remain valid JSON.
func tornMonitor(t *testing.T) *Monitor {
	t.Helper()
	base := gdelt.Timestamp(testBase)
	m := NewMonitor(base, Config{Window: 16, MinSources: 3, GraceIntervals: 8, ChunkIntervals: 1})
	ev := gdelt.Event{GlobalEventID: 1}
	m.ObserveEvent(&ev)
	for i, src := range []string{"a.com", "b.com", "c.com", "d.com"} {
		mn := mention(base, 1, 0, int64(i), src)
		if err := m.ObserveMention(&mn); err != nil {
			t.Fatal(err)
		}
	}
	m.MarkChunk(ivTS(base, 0))
	m.MarkChunk(ivTS(base, 1))
	return m
}

// TestCheckpointTornWriteRecovery simulates a crash mid-checkpoint-write:
// the file on disk is a prefix of the real snapshot. Reading it must return
// a clean error — never a panic, and never a silently half-restored
// monitor.
func TestCheckpointTornWriteRecovery(t *testing.T) {
	m := tornMonitor(t)
	path := filepath.Join(t.TempDir(), "stream.ckpt")
	if err := m.Checkpoint().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(whole) < 4 {
		t.Fatalf("checkpoint suspiciously small: %d bytes", len(whole))
	}
	for _, keep := range []int{len(whole) / 2, len(whole) - 1, 1, 0} {
		if err := os.WriteFile(path, whole[:keep], 0o644); err != nil {
			t.Fatal(err)
		}
		cp, err := ReadCheckpointFile(path)
		if err == nil {
			t.Fatalf("checkpoint truncated to %d/%d bytes read back without error: %+v",
				keep, len(whole), cp)
		}
	}
	// The intact file still round-trips after the torn attempts.
	if err := os.WriteFile(path, whole, 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointTornTmpLeavesGoodFileIntact reproduces the crash window of
// WriteFile's write-tmp-then-rename protocol: a dead process can leave a
// garbage .tmp next to a good checkpoint. The good checkpoint must still
// load, and a subsequent WriteFile must clobber the stale tmp.
func TestCheckpointTornTmpLeavesGoodFileIntact(t *testing.T) {
	m := tornMonitor(t)
	path := filepath.Join(t.TempDir(), "stream.ckpt")
	if err := m.Checkpoint().WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".tmp", []byte(`{"version":`), 0o644); err != nil {
		t.Fatal(err)
	}
	cp, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatalf("good checkpoint unreadable beside a torn tmp: %v", err)
	}
	if _, err := FromCheckpoint(cp); err != nil {
		t.Fatal(err)
	}
	if err := m.Checkpoint().WriteFile(path); err != nil {
		t.Fatalf("rewrite over stale tmp: %v", err)
	}
	if _, err := ReadCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointVersionFromTornFuture guards the explicit-error path for a
// checkpoint whose JSON is intact but whose version is unknown.
func TestCheckpointWrongVersionExplicitError(t *testing.T) {
	m := tornMonitor(t)
	path := filepath.Join(t.TempDir(), "stream.ckpt")
	cp := m.Checkpoint()
	cp.Version = 99
	if err := cp.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FromCheckpoint(back); err == nil {
		t.Fatal("version-99 checkpoint restored without error")
	}
}
