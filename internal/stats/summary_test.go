package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if !math.IsNaN(s.Mean()) {
		t.Fatal("empty summary mean should be NaN")
	}
	for _, x := range []float64{3, 1, 4, 1, 5} {
		s.Add(x)
	}
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Sum != 14 {
		t.Fatalf("summary %+v", s)
	}
	if got := s.Mean(); math.Abs(got-2.8) > 1e-12 {
		t.Fatalf("mean %v", got)
	}
}

func TestSummaryAddN(t *testing.T) {
	var s Summary
	s.AddN(2, 3)
	s.AddN(10, 0) // ignored
	s.AddN(-1, 1)
	if s.N != 4 || s.Min != -1 || s.Max != 2 || s.Sum != 5 {
		t.Fatalf("summary %+v", s)
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	f := func(a, b []int32) bool {
		var whole, left, right Summary
		for _, v := range a {
			x := float64(v)
			whole.Add(x)
			left.Add(x)
		}
		for _, v := range b {
			x := float64(v)
			whole.Add(x)
			right.Add(x)
		}
		left.Merge(right)
		if whole.N != left.N || whole.Min != left.Min || whole.Max != left.Max {
			return false
		}
		return math.Abs(whole.Sum-left.Sum) < 1e-9*(1+math.Abs(whole.Sum))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryMergeEmptySides(t *testing.T) {
	var a, b Summary
	b.Add(7)
	a.Merge(b)
	if a.N != 1 || a.Min != 7 || a.Max != 7 {
		t.Fatalf("merge into empty: %+v", a)
	}
	var c Summary
	a.Merge(c)
	if a.N != 1 {
		t.Fatalf("merge of empty changed summary: %+v", a)
	}
}

func TestIntSummary(t *testing.T) {
	var s IntSummary
	if !math.IsNaN(s.Mean()) {
		t.Fatal("empty int summary mean should be NaN")
	}
	for _, x := range []int64{10, -2, 7} {
		s.Add(x)
	}
	if s.N != 3 || s.Min != -2 || s.Max != 10 || s.Sum != 15 {
		t.Fatalf("summary %+v", s)
	}
	var o IntSummary
	o.Add(-5)
	s.Merge(o)
	if s.Min != -5 || s.N != 4 {
		t.Fatalf("after merge %+v", s)
	}
	var e IntSummary
	e.Merge(s)
	if e != s {
		t.Fatalf("merge into empty should copy: %+v vs %+v", e, s)
	}
}
