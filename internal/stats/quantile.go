package stats

import (
	"math"
	"sort"
)

// Quantile returns the q-quantile (0 <= q <= 1) of sorted using linear
// interpolation between closest ranks (the "R-7" rule used by most
// statistics packages). sorted must be ascending. It returns NaN for an
// empty slice.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Median returns the median of an unsorted slice without modifying it.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	sort.Float64s(tmp)
	return Quantile(tmp, 0.5)
}

// MedianInt64 returns the lower median of an unsorted int64 slice without
// modifying it. For even n it returns element n/2-1 of the sorted order,
// matching the integer "15-minute interval" medians reported in Table VIII.
func MedianInt64(xs []int64) int64 {
	if len(xs) == 0 {
		return 0
	}
	tmp := make([]int64, len(xs))
	copy(tmp, xs)
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	if len(tmp)%2 == 1 {
		return tmp[len(tmp)/2]
	}
	return tmp[len(tmp)/2-1]
}

// CountingMedian computes the lower median of a distribution given as counts
// per integer value: counts[v] observations of value v. Total observations
// must be supplied (callers usually track it alongside the counts). It runs
// in O(len(counts)) and is how per-source delay medians are computed without
// materializing one slice per source.
func CountingMedian(counts []int64, total int64) int64 {
	if total <= 0 {
		return 0
	}
	// Lower median rank, 1-based: ceil(total/2).
	rank := (total + 1) / 2
	var cum int64
	for v, c := range counts {
		cum += c
		if cum >= rank {
			return int64(v)
		}
	}
	return int64(len(counts) - 1)
}

// P2Quantile is the P² streaming quantile estimator (Jain & Chlamtac 1985):
// a five-marker approximation that uses O(1) memory per tracked quantile.
// It is used for progress reporting over streams too large to sort.
type P2Quantile struct {
	q       float64
	n       int64
	heights [5]float64
	pos     [5]float64
	desired [5]float64
	inc     [5]float64
	primed  bool
	initBuf []float64
}

// NewP2Quantile returns an estimator for the q-quantile, 0 < q < 1.
func NewP2Quantile(q float64) *P2Quantile {
	p := &P2Quantile{q: q}
	p.inc = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p
}

// Add folds one observation into the estimator.
func (p *P2Quantile) Add(x float64) {
	p.n++
	if !p.primed {
		p.initBuf = append(p.initBuf, x)
		if len(p.initBuf) == 5 {
			sort.Float64s(p.initBuf)
			copy(p.heights[:], p.initBuf)
			for i := range p.pos {
				p.pos[i] = float64(i + 1)
				p.desired[i] = 1 + p.inc[i]*4
			}
			p.primed = true
			p.initBuf = nil
		}
		return
	}
	// Locate cell k such that heights[k] <= x < heights[k+1].
	var k int
	switch {
	case x < p.heights[0]:
		p.heights[0] = x
		k = 0
	case x >= p.heights[4]:
		p.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < p.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := range p.desired {
		p.desired[i] += p.inc[i]
	}
	// Adjust interior markers.
	for i := 1; i <= 3; i++ {
		d := p.desired[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			h := p.parabolic(i, sign)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, sign)
			}
			p.pos[i] += sign
		}
	}
}

func (p *P2Quantile) parabolic(i int, d float64) float64 {
	return p.heights[i] + d/(p.pos[i+1]-p.pos[i-1])*
		((p.pos[i]-p.pos[i-1]+d)*(p.heights[i+1]-p.heights[i])/(p.pos[i+1]-p.pos[i])+
			(p.pos[i+1]-p.pos[i]-d)*(p.heights[i]-p.heights[i-1])/(p.pos[i]-p.pos[i-1]))
}

func (p *P2Quantile) linear(i int, d float64) float64 {
	di := int(d)
	return p.heights[i] + d*(p.heights[i+di]-p.heights[i])/(p.pos[i+di]-p.pos[i])
}

// Value returns the current quantile estimate. For fewer than five
// observations it falls back to the exact quantile of the buffered values.
func (p *P2Quantile) Value() float64 {
	if !p.primed {
		if len(p.initBuf) == 0 {
			return math.NaN()
		}
		tmp := make([]float64, len(p.initBuf))
		copy(tmp, p.initBuf)
		sort.Float64s(tmp)
		return Quantile(tmp, p.q)
	}
	return p.heights[2]
}

// N returns the number of observations folded in so far.
func (p *P2Quantile) N() int64 { return p.n }

// P2State is the full serializable state of a P2Quantile, used by the
// stream monitor's checkpoint/resume snapshot.
type P2State struct {
	Q       float64    `json:"q"`
	N       int64      `json:"n"`
	Heights [5]float64 `json:"heights"`
	Pos     [5]float64 `json:"pos"`
	Desired [5]float64 `json:"desired"`
	Primed  bool       `json:"primed"`
	InitBuf []float64  `json:"initBuf,omitempty"`
}

// State captures the estimator for checkpointing.
func (p *P2Quantile) State() P2State {
	return P2State{
		Q: p.q, N: p.n,
		Heights: p.heights, Pos: p.pos, Desired: p.desired,
		Primed:  p.primed,
		InitBuf: append([]float64(nil), p.initBuf...),
	}
}

// P2FromState rebuilds an estimator from a checkpointed state. Feeding the
// restored estimator the remaining observations yields exactly the value
// the uninterrupted estimator would have produced.
func P2FromState(st P2State) *P2Quantile {
	p := NewP2Quantile(st.Q)
	p.n = st.N
	p.heights = st.Heights
	p.pos = st.Pos
	p.desired = st.Desired
	p.primed = st.Primed
	p.initBuf = append([]float64(nil), st.InitBuf...)
	return p
}
