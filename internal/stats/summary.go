// Package stats provides the statistical substrate for the analyses: running
// summaries, quantiles, linear and log-binned histograms, power-law fitting
// for the event-size distribution (Figure 2), and the quarter calendar used
// by every time series in the paper (Figures 3-6, 10, 11).
package stats

import "math"

// Summary accumulates count, sum, min, max and mean of a stream of float64
// observations. The zero value is ready to use.
type Summary struct {
	N   int64
	Sum float64
	Min float64
	Max float64
}

// Add folds one observation into the summary.
func (s *Summary) Add(x float64) {
	if s.N == 0 {
		s.Min, s.Max = x, x
	} else {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.N++
	s.Sum += x
}

// AddN folds n identical observations into the summary.
func (s *Summary) AddN(x float64, n int64) {
	if n <= 0 {
		return
	}
	if s.N == 0 {
		s.Min, s.Max = x, x
	} else {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.N += n
	s.Sum += x * float64(n)
}

// Merge folds another summary into s, enabling parallel partial summaries.
func (s *Summary) Merge(o Summary) {
	if o.N == 0 {
		return
	}
	if s.N == 0 {
		*s = o
		return
	}
	if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	s.N += o.N
	s.Sum += o.Sum
}

// Mean returns the arithmetic mean, or NaN for an empty summary.
func (s *Summary) Mean() float64 {
	if s.N == 0 {
		return math.NaN()
	}
	return s.Sum / float64(s.N)
}

// IntSummary is Summary over int64 observations with exact integer sums.
type IntSummary struct {
	N   int64
	Sum int64
	Min int64
	Max int64
}

// Add folds one observation into the summary.
func (s *IntSummary) Add(x int64) {
	if s.N == 0 {
		s.Min, s.Max = x, x
	} else {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.N++
	s.Sum += x
}

// Merge folds another summary into s.
func (s *IntSummary) Merge(o IntSummary) {
	if o.N == 0 {
		return
	}
	if s.N == 0 {
		*s = o
		return
	}
	if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
	s.N += o.N
	s.Sum += o.Sum
}

// Mean returns the arithmetic mean, or NaN for an empty summary.
func (s *IntSummary) Mean() float64 {
	if s.N == 0 {
		return math.NaN()
	}
	return float64(s.Sum) / float64(s.N)
}
