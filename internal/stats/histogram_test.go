package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 100} {
		h.Add(x)
	}
	// -1,0,1.9 -> bucket 0; 2 -> bucket 1; 9.99,10,100 -> bucket 4
	if h.Counts[0] != 3 || h.Counts[1] != 1 || h.Counts[4] != 3 {
		t.Fatalf("counts %v", h.Counts)
	}
	if h.Total() != 7 {
		t.Fatalf("total %d", h.Total())
	}
	lo, hi := h.BucketBounds(1)
	if lo != 2 || hi != 4 {
		t.Fatalf("bounds [%v,%v)", lo, hi)
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(0, 10, 5)
	b := NewHistogram(0, 10, 5)
	a.Add(1)
	b.Add(1)
	b.Add(9)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Counts[0] != 2 || a.Counts[4] != 1 {
		t.Fatalf("counts %v", a.Counts)
	}
	c := NewHistogram(0, 20, 5)
	if err := a.Merge(c); err == nil {
		t.Fatal("merging incompatible histograms should fail")
	}
}

func TestHistogramPanics(t *testing.T) {
	assertPanics(t, func() { NewHistogram(0, 10, 0) })
	assertPanics(t, func() { NewHistogram(5, 5, 3) })
}

func TestLogHistogramBuckets(t *testing.T) {
	h := NewLogHistogram(2, 10)
	cases := map[float64]int{0.5: 0, 1: 0, 2: 1, 3: 1, 4: 2, 1023: 9, 1 << 20: 9}
	for x, want := range cases {
		if got := h.Bucket(x); got != want {
			t.Fatalf("bucket(%v) = %d want %d", x, got, want)
		}
	}
	h.Add(4)
	h.AddN(4, 2)
	if h.Counts[2] != 3 {
		t.Fatalf("counts %v", h.Counts)
	}
	lo, hi := h.BucketBounds(3)
	if math.Abs(lo-8) > 1e-9 || math.Abs(hi-16) > 1e-9 {
		t.Fatalf("bounds [%v,%v)", lo, hi)
	}
	if h.Total() != 3 {
		t.Fatalf("total %d", h.Total())
	}
}

func TestLogHistogramMergeGeometryCheck(t *testing.T) {
	a := NewLogHistogram(2, 4)
	b := NewLogHistogram(2, 4)
	b.Add(2)
	if err := a.Merge(b); err != nil || a.Counts[1] != 1 {
		t.Fatalf("merge err=%v counts=%v", err, a.Counts)
	}
	c := NewLogHistogram(3, 4)
	if err := a.Merge(c); err == nil {
		t.Fatal("merging different base should fail")
	}
}

func TestLogHistogramPanics(t *testing.T) {
	assertPanics(t, func() { NewLogHistogram(1, 4) })
	assertPanics(t, func() { NewLogHistogram(2, 0) })
}

func TestCountTable(t *testing.T) {
	ct := NewCountTable(100)
	if ct.Min() != -1 || ct.Max() != -1 || ct.Median() != -1 || !math.IsNaN(ct.Mean()) {
		t.Fatal("empty table accessors wrong")
	}
	for _, v := range []int64{5, 5, 7, 200, -3} {
		ct.Add(v)
	}
	// 200 clamps to 100, -3 clamps to 0.
	if ct.N != 5 || ct.Min() != 0 || ct.Max() != 100 {
		t.Fatalf("table %+v min=%d max=%d", ct.N, ct.Min(), ct.Max())
	}
	if ct.Median() != 5 {
		t.Fatalf("median %d", ct.Median())
	}
	want := (5.0 + 5 + 7 + 100 + 0) / 5
	if got := ct.Mean(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("mean %v want %v", got, want)
	}
}

func TestCountTableMerge(t *testing.T) {
	a, b := NewCountTable(10), NewCountTable(10)
	a.Add(1)
	b.Add(2)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N != 2 || a.Counts[1] != 1 || a.Counts[2] != 1 {
		t.Fatalf("merged %+v", a)
	}
	c := NewCountTable(11)
	if err := a.Merge(c); err == nil {
		t.Fatal("size mismatch should fail")
	}
}

func TestCountTableMedianProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		ct := NewCountTable(255)
		vals := make([]int64, len(raw))
		for i, v := range raw {
			ct.Add(int64(v))
			vals[i] = int64(v)
		}
		if len(raw) == 0 {
			return ct.Median() == -1
		}
		return ct.Median() == MedianInt64(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
