package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-width linear histogram over [Lo, Hi). Observations
// below Lo land in bucket 0 and observations at or above Hi land in the last
// bucket, so no data is ever dropped.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	width  float64
}

// NewHistogram returns a histogram with n buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: histogram needs at least one bucket")
	}
	if hi <= lo {
		panic(fmt.Sprintf("stats: invalid histogram range [%g,%g)", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, n), width: (hi - lo) / float64(n)}
}

// Bucket returns the bucket index for x.
func (h *Histogram) Bucket(x float64) int {
	if x < h.Lo {
		return 0
	}
	i := int((x - h.Lo) / h.width)
	if i >= len(h.Counts) {
		return len(h.Counts) - 1
	}
	return i
}

// Add folds one observation into the histogram.
func (h *Histogram) Add(x float64) { h.Counts[h.Bucket(x)]++ }

// Merge folds another histogram with identical geometry into h.
func (h *Histogram) Merge(o *Histogram) error {
	if o.Lo != h.Lo || o.Hi != h.Hi || len(o.Counts) != len(h.Counts) {
		return fmt.Errorf("stats: merging incompatible histograms [%g,%g)x%d vs [%g,%g)x%d",
			h.Lo, h.Hi, len(h.Counts), o.Lo, o.Hi, len(o.Counts))
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	return nil
}

// Total returns the number of folded observations.
func (h *Histogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BucketBounds returns the [lo, hi) range covered by bucket i.
func (h *Histogram) BucketBounds(i int) (lo, hi float64) {
	return h.Lo + float64(i)*h.width, h.Lo + float64(i+1)*h.width
}

// LogHistogram buckets positive values by logarithm: bucket i covers
// [base^i, base^(i+1)). It is the natural binning for the power-law plots
// (Figures 2 and 9) where values span five decades.
type LogHistogram struct {
	Base   float64
	Counts []int64
	logb   float64
}

// NewLogHistogram returns a log histogram with the given base (>1) covering
// values up to base^n.
func NewLogHistogram(base float64, n int) *LogHistogram {
	if base <= 1 {
		panic("stats: log histogram base must exceed 1")
	}
	if n <= 0 {
		panic("stats: log histogram needs at least one bucket")
	}
	return &LogHistogram{Base: base, Counts: make([]int64, n), logb: math.Log(base)}
}

// Bucket returns the bucket index for x. Values <= 1 map to bucket 0 and
// values beyond the top bucket clamp to the last.
func (h *LogHistogram) Bucket(x float64) int {
	if x <= 1 {
		return 0
	}
	i := int(math.Log(x) / h.logb)
	if i < 0 {
		return 0
	}
	if i >= len(h.Counts) {
		return len(h.Counts) - 1
	}
	return i
}

// Add folds one observation into the histogram.
func (h *LogHistogram) Add(x float64) { h.Counts[h.Bucket(x)]++ }

// AddN folds n identical observations.
func (h *LogHistogram) AddN(x float64, n int64) { h.Counts[h.Bucket(x)] += n }

// Merge folds another histogram with identical geometry into h.
func (h *LogHistogram) Merge(o *LogHistogram) error {
	if o.Base != h.Base || len(o.Counts) != len(h.Counts) {
		return fmt.Errorf("stats: merging incompatible log histograms base=%g/%g n=%d/%d",
			h.Base, o.Base, len(h.Counts), len(o.Counts))
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	return nil
}

// BucketBounds returns the [lo, hi) value range of bucket i.
func (h *LogHistogram) BucketBounds(i int) (lo, hi float64) {
	return math.Pow(h.Base, float64(i)), math.Pow(h.Base, float64(i+1))
}

// Total returns the number of folded observations.
func (h *LogHistogram) Total() int64 {
	var t int64
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// CountTable is an exact value->count table over small non-negative integers
// (delays in 15-minute intervals fit: one year is 35040 intervals). It is
// the accumulator behind the delay distribution figures.
type CountTable struct {
	Counts []int64
	N      int64
}

// NewCountTable returns a table for values in [0, maxValue].
func NewCountTable(maxValue int) *CountTable {
	return &CountTable{Counts: make([]int64, maxValue+1)}
}

// Add counts one observation of value v, clamping into range.
func (t *CountTable) Add(v int64) {
	if v < 0 {
		v = 0
	}
	if v >= int64(len(t.Counts)) {
		v = int64(len(t.Counts)) - 1
	}
	t.Counts[v]++
	t.N++
}

// Merge folds another table of identical size into t.
func (t *CountTable) Merge(o *CountTable) error {
	if len(o.Counts) != len(t.Counts) {
		return fmt.Errorf("stats: merging incompatible count tables %d vs %d", len(t.Counts), len(o.Counts))
	}
	for i, c := range o.Counts {
		t.Counts[i] += c
	}
	t.N += o.N
	return nil
}

// Min returns the smallest value with a nonzero count, or -1 when empty.
func (t *CountTable) Min() int64 {
	for v, c := range t.Counts {
		if c > 0 {
			return int64(v)
		}
	}
	return -1
}

// Max returns the largest value with a nonzero count, or -1 when empty.
func (t *CountTable) Max() int64 {
	for v := len(t.Counts) - 1; v >= 0; v-- {
		if t.Counts[v] > 0 {
			return int64(v)
		}
	}
	return -1
}

// Mean returns the mean value, or NaN when empty.
func (t *CountTable) Mean() float64 {
	if t.N == 0 {
		return math.NaN()
	}
	var sum float64
	for v, c := range t.Counts {
		sum += float64(v) * float64(c)
	}
	return sum / float64(t.N)
}

// Median returns the lower median value, or -1 when empty.
func (t *CountTable) Median() int64 {
	if t.N == 0 {
		return -1
	}
	return CountingMedian(t.Counts, t.N)
}
