package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitPowerLawRecoversExponent(t *testing.T) {
	// Exact synthetic law: counts[x] = round(1e6 * x^-2.5).
	counts := make([]int64, 200)
	for x := 1; x < len(counts); x++ {
		counts[x] = int64(1e6 * math.Pow(float64(x), -2.5))
	}
	fit, err := FitPowerLaw(counts, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-2.5) > 0.1 {
		t.Fatalf("alpha %v want ~2.5", fit.Alpha)
	}
	if fit.R2 < 0.99 {
		t.Fatalf("r2 %v", fit.R2)
	}
	if fit.N < 50 {
		t.Fatalf("too few points used: %d", fit.N)
	}
}

func TestFitPowerLawXminSkipsHead(t *testing.T) {
	counts := make([]int64, 100)
	// Flat head below 10, power law above.
	for x := 1; x < 10; x++ {
		counts[x] = 1000
	}
	for x := 10; x < len(counts); x++ {
		counts[x] = int64(1e7 * math.Pow(float64(x), -3))
	}
	whole, err := FitPowerLaw(counts, 1)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := FitPowerLaw(counts, 10)
	if err != nil {
		t.Fatal(err)
	}
	if tail.R2 <= whole.R2 {
		t.Fatalf("tail fit should be better: tail R2=%v whole R2=%v", tail.R2, whole.R2)
	}
	if math.Abs(tail.Alpha-3) > 0.15 {
		t.Fatalf("tail alpha %v want ~3", tail.Alpha)
	}
}

func TestFitPowerLawTooFewPoints(t *testing.T) {
	if _, err := FitPowerLaw([]int64{0, 5, 3}, 1); err == nil {
		t.Fatal("expected error for too few points")
	}
}

func TestPowerLawAlphaMLE(t *testing.T) {
	// Sample from a discrete power law with alpha=2.5 via inverse transform
	// on the continuous approximation.
	rng := rand.New(rand.NewSource(11))
	const alpha = 2.5
	vals := make([]int64, 200000)
	for i := range vals {
		u := rng.Float64()
		x := math.Pow(1-u, -1/(alpha-1)) // continuous Pareto with xmin=1
		vals[i] = int64(x)
		if vals[i] < 1 {
			vals[i] = 1
		}
	}
	// Truncating continuous samples to integers biases small values, so fit
	// the tail only (xmin=6), where the continuous approximation is good.
	got, err := PowerLawAlphaMLE(vals, 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-alpha) > 0.2 {
		t.Fatalf("MLE alpha %v want ~%v", got, alpha)
	}
}

func TestPowerLawAlphaMLEErrors(t *testing.T) {
	if _, err := PowerLawAlphaMLE([]int64{1}, 1); err == nil {
		t.Fatal("expected error for single observation")
	}
	if _, err := PowerLawAlphaMLE([]int64{1, 1, 1}, 5); err == nil {
		t.Fatal("expected error when everything is below xmin")
	}
}

func TestLinearRegressionExactLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7}
	slope, intercept, r2, err := LinearRegression(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 || math.Abs(r2-1) > 1e-12 {
		t.Fatalf("slope=%v intercept=%v r2=%v", slope, intercept, r2)
	}
}

func TestLinearRegressionDegenerate(t *testing.T) {
	if _, _, _, err := LinearRegression([]float64{1}, []float64{1}); err == nil {
		t.Fatal("one point should error")
	}
	if _, _, _, err := LinearRegression([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch should error")
	}
	// Vertical data: sxx == 0.
	slope, intercept, r2, err := LinearRegression([]float64{2, 2, 2}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if slope != 0 || intercept != 2 || r2 != 0 {
		t.Fatalf("degenerate fit slope=%v intercept=%v r2=%v", slope, intercept, r2)
	}
	// Horizontal data: syy == 0 means perfect fit.
	_, _, r2, err = LinearRegression([]float64{1, 2, 3}, []float64{5, 5, 5})
	if err != nil || r2 != 1 {
		t.Fatalf("horizontal r2=%v err=%v", r2, err)
	}
}
