package stats

import (
	"testing"
	"testing/quick"
)

func TestQuarterOf(t *testing.T) {
	cases := []struct {
		month int
		q     int
	}{{1, 1}, {2, 1}, {3, 1}, {4, 2}, {6, 2}, {7, 3}, {9, 3}, {10, 4}, {12, 4}}
	for _, c := range cases {
		if got := QuarterOf(2015, c.month); got.Q != c.q {
			t.Fatalf("month %d -> Q%d want Q%d", c.month, got.Q, c.q)
		}
	}
	assertPanics(t, func() { QuarterOf(2015, 0) })
	assertPanics(t, func() { QuarterOf(2015, 13) })
}

func TestQuarterIndexAndNext(t *testing.T) {
	base := Quarter{2015, 1}
	if got := (Quarter{2015, 1}).Index(base); got != 0 {
		t.Fatalf("index %d", got)
	}
	if got := (Quarter{2016, 2}).Index(base); got != 5 {
		t.Fatalf("index %d want 5", got)
	}
	if got := (Quarter{2014, 4}).Index(base); got != -1 {
		t.Fatalf("index %d want -1", got)
	}
	if got := (Quarter{2015, 4}).Next(); got != (Quarter{2016, 1}) {
		t.Fatalf("next %v", got)
	}
	if got := (Quarter{2015, 2}).Next(); got != (Quarter{2015, 3}) {
		t.Fatalf("next %v", got)
	}
}

func TestQuarterString(t *testing.T) {
	if s := (Quarter{2016, 3}).String(); s != "2016Q3" {
		t.Fatalf("string %q", s)
	}
	if m := (Quarter{2016, 3}).FirstMonth(); m != 7 {
		t.Fatalf("first month %d", m)
	}
}

func TestQuarterRange(t *testing.T) {
	qs := QuarterRange(Quarter{2015, 1}, Quarter{2019, 4})
	if len(qs) != 20 {
		t.Fatalf("2015Q1..2019Q4 should be 20 quarters, got %d", len(qs))
	}
	if qs[0] != (Quarter{2015, 1}) || qs[19] != (Quarter{2019, 4}) {
		t.Fatalf("endpoints %v %v", qs[0], qs[19])
	}
	if qs := QuarterRange(Quarter{2016, 1}, Quarter{2015, 4}); qs != nil {
		t.Fatalf("reversed range should be nil, got %v", qs)
	}
}

func TestQuarterRangeIndexRoundTrip(t *testing.T) {
	f := func(yoff uint8, q1 uint8) bool {
		base := Quarter{2015, 1}
		q := Quarter{2015 + int(yoff%10), int(q1%4) + 1}
		idx := q.Index(base)
		// Walking idx steps from base must recover q.
		w := base
		for i := 0; i < idx; i++ {
			w = w.Next()
		}
		return w == q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuarterSeries(t *testing.T) {
	s := NewQuarterSeries(Quarter{2015, 1}, Quarter{2015, 4})
	if len(s.Values) != 4 {
		t.Fatalf("len %d", len(s.Values))
	}
	s.Add(Quarter{2015, 2}, 3)
	s.Add(Quarter{2014, 1}, 1) // clamps to first
	s.Add(Quarter{2020, 1}, 2) // clamps to last
	if s.Values[0] != 1 || s.Values[1] != 3 || s.Values[3] != 2 {
		t.Fatalf("values %v", s.Values)
	}
	if got := s.Quarter(2); got != (Quarter{2015, 3}) {
		t.Fatalf("quarter(2) = %v", got)
	}
}

func TestQuarterSeriesMerge(t *testing.T) {
	a := NewQuarterSeries(Quarter{2015, 1}, Quarter{2015, 2})
	b := NewQuarterSeries(Quarter{2015, 1}, Quarter{2015, 2})
	a.Add(Quarter{2015, 1}, 1)
	b.Add(Quarter{2015, 2}, 2)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Values[0] != 1 || a.Values[1] != 2 {
		t.Fatalf("values %v", a.Values)
	}
	c := NewQuarterSeries(Quarter{2016, 1}, Quarter{2016, 2})
	if err := a.Merge(c); err == nil {
		t.Fatal("mismatched base should fail")
	}
}
