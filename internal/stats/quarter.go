package stats

import "fmt"

// Quarter identifies a calendar quarter. The paper aggregates every time
// series into quarters "for readability reasons"; the first quarter of the
// dataset starts mid-quarter (18 Feb 2015) and is therefore partial.
type Quarter struct {
	Year int
	Q    int // 1..4
}

// QuarterOf returns the quarter containing the given calendar month.
func QuarterOf(year, month int) Quarter {
	if month < 1 || month > 12 {
		panic(fmt.Sprintf("stats: invalid month %d", month))
	}
	return Quarter{Year: year, Q: (month-1)/3 + 1}
}

// Index returns the number of quarters between base and q (0 when equal,
// negative when q precedes base).
func (q Quarter) Index(base Quarter) int {
	return (q.Year-base.Year)*4 + (q.Q - base.Q)
}

// Next returns the quarter after q.
func (q Quarter) Next() Quarter {
	if q.Q == 4 {
		return Quarter{Year: q.Year + 1, Q: 1}
	}
	return Quarter{Year: q.Year, Q: q.Q + 1}
}

// FirstMonth returns the first calendar month (1..12) of the quarter.
func (q Quarter) FirstMonth() int { return (q.Q-1)*3 + 1 }

// String renders the quarter as "2016Q3".
func (q Quarter) String() string { return fmt.Sprintf("%dQ%d", q.Year, q.Q) }

// QuarterRange enumerates the quarters from first to last inclusive.
func QuarterRange(first, last Quarter) []Quarter {
	if last.Index(first) < 0 {
		return nil
	}
	out := make([]Quarter, 0, last.Index(first)+1)
	for q := first; ; q = q.Next() {
		out = append(out, q)
		if q == last {
			break
		}
	}
	return out
}

// QuarterSeries is a numeric series indexed by quarter, with the base
// quarter remembered so indices are self-describing.
type QuarterSeries struct {
	Base   Quarter
	Values []float64
}

// NewQuarterSeries returns a series covering first..last inclusive,
// initialized to zero.
func NewQuarterSeries(first, last Quarter) *QuarterSeries {
	n := last.Index(first) + 1
	if n < 1 {
		n = 1
	}
	return &QuarterSeries{Base: first, Values: make([]float64, n)}
}

// Add accumulates v into the bucket for quarter q; out-of-range quarters
// clamp to the nearest end so partial boundary data is never dropped.
func (s *QuarterSeries) Add(q Quarter, v float64) {
	i := q.Index(s.Base)
	if i < 0 {
		i = 0
	}
	if i >= len(s.Values) {
		i = len(s.Values) - 1
	}
	s.Values[i] += v
}

// Quarter returns the quarter labeling position i.
func (s *QuarterSeries) Quarter(i int) Quarter {
	q := s.Base
	for j := 0; j < i; j++ {
		q = q.Next()
	}
	return q
}

// Merge adds another series with the same geometry into s.
func (s *QuarterSeries) Merge(o *QuarterSeries) error {
	if o.Base != s.Base || len(o.Values) != len(s.Values) {
		return fmt.Errorf("stats: merging incompatible quarter series %v x%d vs %v x%d",
			s.Base, len(s.Values), o.Base, len(o.Values))
	}
	for i, v := range o.Values {
		s.Values[i] += v
	}
	return nil
}
