package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestQuantileEdges(t *testing.T) {
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
	one := []float64{42}
	for _, q := range []float64{0, 0.5, 1} {
		if Quantile(one, q) != 42 {
			t.Fatalf("single-element quantile q=%v", q)
		}
	}
	xs := []float64{1, 2, 3, 4}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 4 {
		t.Fatal("extreme quantiles should be min/max")
	}
	if got := Quantile(xs, 0.5); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("median of 1..4 = %v, want 2.5", got)
	}
	if Quantile(xs, -1) != 1 || Quantile(xs, 2) != 4 {
		t.Fatal("out-of-range q should clamp")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	if got := Quantile(xs, 0.25); math.Abs(got-20) > 1e-12 {
		t.Fatalf("q25 = %v want 20", got)
	}
	if got := Quantile(xs, 0.1); math.Abs(got-14) > 1e-12 {
		t.Fatalf("q10 = %v want 14", got)
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if got := Median(xs); got != 2 {
		t.Fatalf("median %v", got)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Median mutated its input")
	}
	if !math.IsNaN(Median(nil)) {
		t.Fatal("empty median should be NaN")
	}
}

func TestMedianInt64LowerMedian(t *testing.T) {
	if got := MedianInt64([]int64{5, 1, 3}); got != 3 {
		t.Fatalf("odd median %d", got)
	}
	if got := MedianInt64([]int64{4, 1, 3, 2}); got != 2 {
		t.Fatalf("even lower median %d, want 2", got)
	}
	if got := MedianInt64(nil); got != 0 {
		t.Fatalf("empty median %d", got)
	}
}

func TestCountingMedianMatchesMedianInt64(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return CountingMedian(nil, 0) == 0
		}
		counts := make([]int64, 256)
		vals := make([]int64, len(raw))
		for i, v := range raw {
			counts[v]++
			vals[i] = int64(v)
		}
		return CountingMedian(counts, int64(len(raw))) == MedianInt64(vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestP2QuantileSmallStreams(t *testing.T) {
	p := NewP2Quantile(0.5)
	if !math.IsNaN(p.Value()) {
		t.Fatal("empty P2 should be NaN")
	}
	for _, x := range []float64{5, 1, 3} {
		p.Add(x)
	}
	if got := p.Value(); got != 3 {
		t.Fatalf("buffered exact median = %v want 3", got)
	}
	if p.N() != 3 {
		t.Fatalf("N = %d", p.N())
	}
}

func TestP2QuantileApproximatesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, q := range []float64{0.1, 0.5, 0.9} {
		p := NewP2Quantile(q)
		xs := make([]float64, 50000)
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 100
			p.Add(xs[i])
		}
		sort.Float64s(xs)
		exact := Quantile(xs, q)
		got := p.Value()
		if math.Abs(got-exact) > 0.5 {
			t.Fatalf("q=%v: P2=%v exact=%v", q, got, exact)
		}
	}
}

func TestP2QuantileMonotoneTransformSane(t *testing.T) {
	// On a sorted input stream the estimator must stay within observed range.
	p := NewP2Quantile(0.5)
	for i := 0; i < 1000; i++ {
		p.Add(float64(i))
	}
	if v := p.Value(); v < 0 || v > 999 {
		t.Fatalf("estimate %v outside data range", v)
	}
}
