package stats

import (
	"errors"
	"math"
)

// PowerLawFit is the result of fitting counts ~ C * x^(-Alpha).
type PowerLawFit struct {
	// Alpha is the power-law exponent (positive for a decaying law).
	Alpha float64
	// C is the fitted log-log intercept, i.e. counts ≈ exp(C) * x^(-Alpha).
	C float64
	// R2 is the coefficient of determination of the log-log regression.
	R2 float64
	// N is the number of (x, count) points used.
	N int
}

// FitPowerLaw fits a discrete power law to a size distribution given as
// counts[x] = number of observations with value x (index 0 unused or zero).
// Points with zero counts are skipped; fitting happens in log-log space by
// least squares, which is how the "frequency of highly reported news follows
// a power law" claim around Figure 2 is checked. xmin restricts the fit to
// values >= xmin, which excludes the non-power-law head.
func FitPowerLaw(counts []int64, xmin int) (PowerLawFit, error) {
	if xmin < 1 {
		xmin = 1
	}
	var xs, ys []float64
	for x := xmin; x < len(counts); x++ {
		if counts[x] > 0 {
			xs = append(xs, math.Log(float64(x)))
			ys = append(ys, math.Log(float64(counts[x])))
		}
	}
	if len(xs) < 3 {
		return PowerLawFit{}, errors.New("stats: too few points for a power-law fit")
	}
	slope, intercept, r2 := linearRegression(xs, ys)
	return PowerLawFit{Alpha: -slope, C: intercept, R2: r2, N: len(xs)}, nil
}

// PowerLawAlphaMLE estimates the exponent of a discrete power law by the
// continuous-approximation maximum-likelihood estimator of Clauset, Shalizi
// and Newman: alpha = 1 + n / sum(ln(x_i / (xmin - 0.5))). values holds raw
// observations (e.g. the article count of each event).
func PowerLawAlphaMLE(values []int64, xmin int64) (float64, error) {
	if xmin < 1 {
		xmin = 1
	}
	denom := float64(xmin) - 0.5
	var n int
	var sum float64
	for _, v := range values {
		if v >= xmin {
			n++
			sum += math.Log(float64(v) / denom)
		}
	}
	if n < 2 || sum <= 0 {
		return 0, errors.New("stats: too few observations above xmin for MLE")
	}
	return 1 + float64(n)/sum, nil
}

// linearRegression returns the least-squares slope, intercept and R² of
// y = slope*x + intercept.
func linearRegression(xs, ys []float64) (slope, intercept, r2 float64) {
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return 0, my, 0
	}
	slope = sxy / sxx
	intercept = my - slope*mx
	if syy == 0 {
		return slope, intercept, 1
	}
	r2 = (sxy * sxy) / (sxx * syy)
	return slope, intercept, r2
}

// LinearRegression exposes the least-squares fit for callers outside the
// package (e.g. trend checks over quarterly series in EXPERIMENTS.md).
func LinearRegression(xs, ys []float64) (slope, intercept, r2 float64, err error) {
	if len(xs) != len(ys) {
		return 0, 0, 0, errors.New("stats: regression inputs have different lengths")
	}
	if len(xs) < 2 {
		return 0, 0, 0, errors.New("stats: regression needs at least two points")
	}
	slope, intercept, r2 = linearRegression(xs, ys)
	return slope, intercept, r2, nil
}
