// Package graph provides the network-analysis algorithms the paper's
// platform is built to enable (Section II dismisses SQL services precisely
// because "they do not allow running network analysis algorithms
// efficiently"): a compact weighted-graph representation over news sources
// plus connected components, degree/strength statistics and PageRank
// centrality, all operating on the co-reporting matrix.
package graph

import (
	"fmt"
	"math"
	"sort"

	"gdeltmine/internal/matrix"
)

// Graph is an undirected weighted graph in CSR adjacency form.
type Graph struct {
	N      int
	AdjPtr []int64
	AdjTo  []int32
	AdjW   []float64
}

// FromSimilarity builds a graph from a symmetric similarity matrix, keeping
// edges with weight above threshold. The diagonal is ignored.
func FromSimilarity(sim *matrix.Dense, threshold float64) (*Graph, error) {
	if sim.Rows != sim.Cols {
		return nil, fmt.Errorf("graph: similarity matrix must be square, have %dx%d", sim.Rows, sim.Cols)
	}
	if !sim.IsSymmetric(1e-9) {
		return nil, fmt.Errorf("graph: similarity matrix must be symmetric")
	}
	n := sim.Rows
	g := &Graph{N: n, AdjPtr: make([]int64, n+1)}
	for i := 0; i < n; i++ {
		row := sim.Row(i)
		for j, w := range row {
			if i != j && w > threshold {
				g.AdjTo = append(g.AdjTo, int32(j))
				g.AdjW = append(g.AdjW, w)
			}
		}
		g.AdjPtr[i+1] = int64(len(g.AdjTo))
	}
	return g, nil
}

// Neighbors returns node i's adjacency (aliases storage).
func (g *Graph) Neighbors(i int) ([]int32, []float64) {
	lo, hi := g.AdjPtr[i], g.AdjPtr[i+1]
	return g.AdjTo[lo:hi], g.AdjW[lo:hi]
}

// Edges returns the number of undirected edges.
func (g *Graph) Edges() int { return len(g.AdjTo) / 2 }

// Degree returns node i's degree.
func (g *Graph) Degree(i int) int { return int(g.AdjPtr[i+1] - g.AdjPtr[i]) }

// Strength returns the sum of node i's edge weights.
func (g *Graph) Strength(i int) float64 {
	_, ws := g.Neighbors(i)
	var s float64
	for _, w := range ws {
		s += w
	}
	return s
}

// Components returns the connected components, largest first, each sorted
// ascending.
func (g *Graph) Components() [][]int {
	comp := make([]int, g.N)
	for i := range comp {
		comp[i] = -1
	}
	var stack []int32
	next := 0
	for s := 0; s < g.N; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = next
		stack = append(stack[:0], int32(s))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			tos, _ := g.Neighbors(int(v))
			for _, to := range tos {
				if comp[to] < 0 {
					comp[to] = next
					stack = append(stack, to)
				}
			}
		}
		next++
	}
	groups := make([][]int, next)
	for i, c := range comp {
		groups[c] = append(groups[c], i)
	}
	sort.Slice(groups, func(a, b int) bool {
		if len(groups[a]) != len(groups[b]) {
			return len(groups[a]) > len(groups[b])
		}
		return groups[a][0] < groups[b][0]
	})
	return groups
}

// PageRankOptions tunes the power iteration.
type PageRankOptions struct {
	// Damping is the teleport complement; zero means 0.85.
	Damping float64
	// MaxIters bounds the iteration; zero means 100.
	MaxIters int
	// Epsilon is the L1 convergence threshold; zero means 1e-9.
	Epsilon float64
}

// PageRank computes weighted PageRank centrality. The returned vector sums
// to 1; dangling nodes teleport uniformly.
func (g *Graph) PageRank(opt PageRankOptions) []float64 {
	if opt.Damping == 0 {
		opt.Damping = 0.85
	}
	if opt.MaxIters == 0 {
		opt.MaxIters = 100
	}
	if opt.Epsilon == 0 {
		opt.Epsilon = 1e-9
	}
	n := g.N
	if n == 0 {
		return nil
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	outW := make([]float64, n)
	for i := 0; i < n; i++ {
		rank[i] = 1 / float64(n)
		outW[i] = g.Strength(i)
	}
	for iter := 0; iter < opt.MaxIters; iter++ {
		base := (1 - opt.Damping) / float64(n)
		var dangling float64
		for i := 0; i < n; i++ {
			next[i] = base
			if outW[i] == 0 {
				dangling += rank[i]
			}
		}
		spread := opt.Damping * dangling / float64(n)
		for i := 0; i < n; i++ {
			next[i] += spread
		}
		for i := 0; i < n; i++ {
			if outW[i] == 0 {
				continue
			}
			share := opt.Damping * rank[i] / outW[i]
			tos, ws := g.Neighbors(i)
			for k, to := range tos {
				next[to] += share * ws[k]
			}
		}
		var delta float64
		for i := 0; i < n; i++ {
			delta += math.Abs(next[i] - rank[i])
		}
		rank, next = next, rank
		if delta < opt.Epsilon {
			break
		}
	}
	return rank
}

// DegreeDistribution returns counts[d] = number of nodes with degree d.
func (g *Graph) DegreeDistribution() []int64 {
	maxD := 0
	for i := 0; i < g.N; i++ {
		if d := g.Degree(i); d > maxD {
			maxD = d
		}
	}
	counts := make([]int64, maxD+1)
	for i := 0; i < g.N; i++ {
		counts[g.Degree(i)]++
	}
	return counts
}
