package graph

import (
	"math"
	"testing"

	"gdeltmine/internal/matrix"
)

// twoTriangles builds a similarity matrix with two disjoint triangles
// {0,1,2} and {3,4,5} plus an isolated node 6.
func twoTriangles() *matrix.Dense {
	m := matrix.NewDense(7, 7)
	link := func(a, b int, w float64) {
		m.Set(a, b, w)
		m.Set(b, a, w)
	}
	link(0, 1, 1)
	link(1, 2, 1)
	link(0, 2, 1)
	link(3, 4, 0.5)
	link(4, 5, 0.5)
	link(3, 5, 0.5)
	return m
}

func TestFromSimilarity(t *testing.T) {
	g, err := FromSimilarity(twoTriangles(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 7 || g.Edges() != 6 {
		t.Fatalf("n=%d edges=%d", g.N, g.Edges())
	}
	if g.Degree(0) != 2 || g.Degree(6) != 0 {
		t.Fatalf("degrees %d %d", g.Degree(0), g.Degree(6))
	}
	if s := g.Strength(3); math.Abs(s-1.0) > 1e-12 {
		t.Fatalf("strength %v", s)
	}
	// Threshold filters the weaker triangle away.
	g2, err := FromSimilarity(twoTriangles(), 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Edges() != 3 {
		t.Fatalf("thresholded edges %d", g2.Edges())
	}
}

func TestFromSimilarityErrors(t *testing.T) {
	if _, err := FromSimilarity(matrix.NewDense(2, 3), 0); err == nil {
		t.Fatal("non-square accepted")
	}
	asym := matrix.NewDense(2, 2)
	asym.Set(0, 1, 1)
	if _, err := FromSimilarity(asym, 0); err == nil {
		t.Fatal("asymmetric accepted")
	}
}

func TestComponents(t *testing.T) {
	g, err := FromSimilarity(twoTriangles(), 0)
	if err != nil {
		t.Fatal(err)
	}
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components %v", comps)
	}
	// Two triangles (size 3) then the isolated node.
	if len(comps[0]) != 3 || len(comps[1]) != 3 || len(comps[2]) != 1 {
		t.Fatalf("component sizes %v", comps)
	}
	if comps[2][0] != 6 {
		t.Fatalf("isolated node %v", comps[2])
	}
	// Sorted-first tiebreak: {0,1,2} before {3,4,5}.
	if comps[0][0] != 0 || comps[1][0] != 3 {
		t.Fatalf("component order %v", comps)
	}
}

func TestPageRankProperties(t *testing.T) {
	g, err := FromSimilarity(twoTriangles(), 0)
	if err != nil {
		t.Fatal(err)
	}
	pr := g.PageRank(PageRankOptions{})
	var sum float64
	for _, v := range pr {
		if v <= 0 {
			t.Fatalf("non-positive rank %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("ranks sum to %v", sum)
	}
	// Symmetric triangles: nodes within a triangle share the same rank.
	if math.Abs(pr[0]-pr[1]) > 1e-9 || math.Abs(pr[3]-pr[5]) > 1e-9 {
		t.Fatalf("asymmetric ranks %v", pr)
	}
	// The isolated node has the lowest rank.
	for i := 0; i < 6; i++ {
		if pr[6] >= pr[i] {
			t.Fatalf("isolated node outranks %d: %v", i, pr)
		}
	}
}

func TestPageRankHub(t *testing.T) {
	// Star graph: hub 0 connected to 1..5.
	m := matrix.NewDense(6, 6)
	for i := 1; i < 6; i++ {
		m.Set(0, i, 1)
		m.Set(i, 0, 1)
	}
	g, err := FromSimilarity(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	pr := g.PageRank(PageRankOptions{})
	for i := 1; i < 6; i++ {
		if pr[0] <= pr[i] {
			t.Fatalf("hub not top-ranked: %v", pr)
		}
	}
}

func TestPageRankEmptyGraph(t *testing.T) {
	g, err := FromSimilarity(matrix.NewDense(0, 0), 0)
	if err != nil {
		t.Fatal(err)
	}
	if pr := g.PageRank(PageRankOptions{}); pr != nil {
		t.Fatalf("empty graph rank %v", pr)
	}
}

func TestDegreeDistribution(t *testing.T) {
	g, err := FromSimilarity(twoTriangles(), 0)
	if err != nil {
		t.Fatal(err)
	}
	dd := g.DegreeDistribution()
	if dd[0] != 1 || dd[2] != 6 {
		t.Fatalf("distribution %v", dd)
	}
}
